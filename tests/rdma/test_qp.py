"""Verb semantics: one-sided, two-sided, atomics, protection, failures."""

import numpy as np
import pytest

from repro.errors import ProtectionError, QPError
from repro.nvm.device import NVMDevice
from repro.rdma.fabric import Fabric
from repro.rdma.verbs import Opcode
from repro.sim.kernel import Environment


@pytest.fixture
def net(env):
    """A fabric with a server (1 MiB NVM) and one client; no jitter so
    latency assertions are exact."""
    fabric = Fabric(env, jitter_ns=0.0)
    server = fabric.create_node("server", device=NVMDevice(env, 1 << 20))
    client = fabric.create_node("client")
    ep = fabric.connect(client, server)
    mr = server.register_memory(0, 1 << 20, name="pool")
    return fabric, server, client, ep, mr


def run(env, gen):
    return env.run(env.process(gen))


class TestWrite:
    def test_write_lands_visible_not_durable(self, env, net):
        fabric, server, client, ep, mr = net

        def proc():
            yield from ep.write(mr.rkey, 64, b"data!")

        run(env, proc())
        assert server.device.read(64, 5) == b"data!"
        assert not server.device.is_persistent(64, 5)

    def test_write_latency_matches_model(self, env, net):
        fabric, server, client, ep, mr = net
        t = fabric.timing

        def proc():
            t0 = env.now
            yield from ep.write(mr.rkey, 0, b"x" * 64)
            return env.now - t0

        lat = run(env, proc())
        expected = (
            t.nic_tx_ns
            + t.serialize_ns(64)
            + 2 * t.propagation_ns
            + t.dma_ns
            + t.nic_rx_ns
        )
        assert lat == pytest.approx(expected)

    def test_large_write_costs_more(self, env, net):
        fabric, server, client, ep, mr = net

        def timed(n):
            def proc():
                t0 = env.now
                yield from ep.write(mr.rkey, 0, b"x" * n)
                return env.now - t0

            return run(env, proc())

        assert timed(4096) > timed(64)

    def test_write_outside_region_rejected(self, env, net):
        fabric, server, client, ep, mr = net

        def proc():
            yield from ep.write(mr.rkey, (1 << 20) - 2, b"xxxx")

        with pytest.raises(ProtectionError):
            run(env, proc())

    def test_write_bad_rkey_rejected(self, env, net):
        fabric, server, client, ep, mr = net

        def proc():
            yield from ep.write(0xDEAD, 0, b"x")

        with pytest.raises(ProtectionError):
            run(env, proc())

    def test_write_readonly_region_rejected(self, env, net):
        fabric, server, client, ep, mr = net
        ro = server.register_memory(0, 4096, writable=False, name="ro")

        def proc():
            yield from ep.write(ro.rkey, 0, b"x")

        with pytest.raises(ProtectionError):
            run(env, proc())


class TestRead:
    def test_read_returns_visible_bytes(self, env, net):
        fabric, server, client, ep, mr = net
        server.device.write(128, b"remote bytes")

        def proc():
            return (yield from ep.read(mr.rkey, 128, 12))

        assert run(env, proc()) == b"remote bytes"

    def test_read_occupies_remote_tx(self, env, net):
        """The data leg of a READ serializes on the target's TX engine."""
        fabric, server, client, ep, mr = net

        def reader():
            yield from ep.read(mr.rkey, 0, 1 << 19)  # huge read

        def competing():
            yield env.timeout(1000)  # let the big read start
            t0 = env.now
            yield from ep.read(mr.rkey, 0, 8)
            return env.now - t0

        env.process(reader())
        small_lat = env.run(env.process(competing()))
        # 512 KiB at 0.08 ns/B holds the engine ~42 us; the small read
        # must have waited well beyond its uncontended ~2 us.
        assert small_lat > 10_000


class TestAtomics:
    def test_cas_success_and_failure(self, env, net):
        fabric, server, client, ep, mr = net
        server.device.write_atomic64(0, (5).to_bytes(8, "little"))

        def proc():
            old = yield from ep.cas(
                mr.rkey, 0, (5).to_bytes(8, "little"), (9).to_bytes(8, "little")
            )
            old2 = yield from ep.cas(
                mr.rkey, 0, (5).to_bytes(8, "little"), (7).to_bytes(8, "little")
            )
            return old, old2

        old, old2 = run(env, proc())
        assert int.from_bytes(old, "little") == 5
        assert int.from_bytes(old2, "little") == 9  # second CAS failed
        assert server.device.read(0, 8) == (9).to_bytes(8, "little")

    def test_faa(self, env, net):
        fabric, server, client, ep, mr = net

        def proc():
            a = yield from ep.faa(mr.rkey, 8, 10)
            b = yield from ep.faa(mr.rkey, 8, 10)
            return a, b

        assert run(env, proc()) == (0, 10)

    def test_cas_operand_size_checked(self, env, net):
        fabric, server, client, ep, mr = net

        def proc():
            yield from ep.cas(mr.rkey, 0, b"xx", b"yy")

        with pytest.raises(QPError):
            run(env, proc())


class TestTwoSided:
    def test_send_delivers_to_srq(self, env, net):
        fabric, server, client, ep, mr = net

        def sender():
            yield from ep.send({"op": "ping"}, 64)

        def receiver():
            msg = yield server.srq.get()
            return msg.payload, msg.opcode

        env.process(sender())
        payload, opcode = env.run(env.process(receiver()))
        assert payload == {"op": "ping"} and opcode is Opcode.SEND

    def test_reply_roundtrip(self, env, net):
        fabric, server, client, ep, mr = net

        def srv():
            msg = yield server.srq.get()
            yield from msg.reply_to.send("pong", 16, in_reply_to=msg.req_id)

        def cli():
            rid = yield from ep.send("ping", 16)
            resp = yield from ep.recv_response(rid)
            return resp.payload

        env.process(srv())
        assert env.run(env.process(cli())) == "pong"

    def test_write_with_imm_data_plus_notification(self, env, net):
        fabric, server, client, ep, mr = net

        def cli():
            yield from ep.write_with_imm(mr.rkey, 256, b"bulk", imm=77)

        def srv():
            msg = yield server.srq.get()
            return msg.imm, msg.opcode

        env.process(cli())
        imm, opcode = env.run(env.process(srv()))
        assert imm == 77 and opcode is Opcode.WRITE_WITH_IMM
        assert server.device.read(256, 4) == b"bulk"


class TestNodeDeath:
    def test_ops_to_dead_node_fail(self, env, net):
        fabric, server, client, ep, mr = net
        fabric.crash_node(server, np.random.default_rng(0))

        for op in (
            lambda: ep.write(mr.rkey, 0, b"x"),
            lambda: ep.read(mr.rkey, 0, 1),
            lambda: ep.send("hi", 16),
        ):
            with pytest.raises(QPError):
                run(env, op())

    def test_write_in_flight_at_crash_fails(self, env, net):
        fabric, server, client, ep, mr = net
        outcome = {}

        def writer():
            try:
                yield from ep.write(mr.rkey, 0, b"z" * 4096)
            except QPError:
                outcome["failed"] = True

        def killer():
            yield env.timeout(900)  # mid-flight
            fabric.crash_node(server, np.random.default_rng(1))

        env.process(writer())
        env.process(killer())
        env.run()
        assert outcome.get("failed")


class TestStats:
    def test_opcode_counters(self, env, net):
        fabric, server, client, ep, mr = net

        def proc():
            yield from ep.write(mr.rkey, 0, b"x")
            yield from ep.read(mr.rkey, 0, 1)
            yield from ep.read(mr.rkey, 0, 1)

        run(env, proc())
        assert ep.stats == {"write": 1, "read": 2}
