"""Public API surface: registry, builders, package exports."""

import pytest

import repro
from repro.errors import ConfigError
from repro.sim import Environment
from repro.stores import STORES, build_store, store_names


class TestRegistry:
    def test_all_paper_systems_present(self):
        assert set(store_names()) == {
            "efactory",
            "efactory_nohr",
            "ca",
            "rpc",
            "saw",
            "imm",
            "erda",
            "forca",
        }

    def test_labels_match_paper(self):
        assert STORES["efactory"].label == "eFactory"
        assert STORES["ca"].label == "CA w/o persistence"
        assert STORES["efactory_nohr"].label == "eFactory w/o hr"

    def test_guarantee_flags(self):
        assert STORES["rpc"].durable_put and STORES["imm"].durable_put
        assert not STORES["efactory"].durable_put  # async durability
        assert STORES["efactory"].consistent_get
        assert not STORES["ca"].consistent_get

    def test_unknown_store_rejected(self):
        with pytest.raises(ConfigError, match="unknown store"):
            build_store("nope", Environment())

    def test_negative_clients_rejected(self):
        with pytest.raises(ConfigError):
            build_store("ca", Environment(), n_clients=-1)


class TestBuildStore:
    def test_builds_requested_clients(self):
        env = Environment()
        setup = build_store("efactory", env, n_clients=3)
        assert len(setup.clients) == 3
        assert setup.client(1) is setup.clients[1]

    def test_config_overrides_applied(self):
        env = Environment()
        setup = build_store(
            "efactory", env, config_overrides={"hybrid_read": False}
        )
        assert setup.server.config.hybrid_read is False

    def test_shared_fabric_possible(self):
        from repro.rdma.fabric import Fabric

        env = Environment()
        fabric = Fabric(env)
        a = build_store("ca", env, fabric=fabric)
        b = build_store("rpc", env, fabric=fabric)
        assert a.fabric is b.fabric

    def test_quickstart_from_docstring(self):
        env = Environment()
        setup = build_store("efactory", env, n_clients=1).start()
        client = setup.client()

        def demo():
            yield from client.put(b"k" * 12, b"hello")
            value = yield from client.get(b"k" * 12, size_hint=5)
            return value

        assert env.run(env.process(demo())) == b"hello"


class TestPackage:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.crc
        import repro.harness
        import repro.kv
        import repro.mem
        import repro.nvm
        import repro.rdma
        import repro.sim
        import repro.workloads
