"""Open-loop load engine: determinism, SLO accounting, admission
control end-to-end, completion batching, chaos hooks."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan, FaultRule
from repro.loadgen.arrivals import ArrivalCurve
from repro.loadgen.engine import LoadSpec, run_load
from repro.loadgen.tenants import TenantSpec
from repro.workloads.ycsb import ycsb_a, ycsb_b, ycsb_f


def small_spec(**kw):
    tenants = kw.pop(
        "tenants",
        (
            TenantSpec(
                name="t0",
                workload=ycsb_b(key_count=128, value_len=64),
                clients=4,
                ops_per_client=25,
                rate_ops_s=4 * 100_000.0,
                slo_ns=25_000.0,
            ),
        ),
    )
    kw.setdefault("settle_ns", 2_000_000.0)
    return LoadSpec(tenants=tenants, **kw)


class TestEngine:
    def test_deterministic_repeat(self):
        spec = small_spec(admission_watermark=4, churn_rotate_every=40)
        assert run_load(spec).as_dict() == run_load(spec).as_dict()

    def test_all_scheduled_ops_complete(self):
        report = run_load(small_spec())
        t = report.tenants[0]
        assert t.ops + t.errors == 4 * 25
        assert report.total_errors == 0

    def test_slo_accounting(self):
        report = run_load(small_spec())
        t = report.tenants[0]
        assert 0.0 <= t.slo_fraction <= 1.0
        # goodput can never exceed delivered throughput
        assert t.goodput_ops_s <= t.ops / t.window_ns * 1e9 + 1e-6
        assert t.p50_ns <= t.p99_ns <= t.p999_ns <= t.max_ns

    def test_multi_tenant_isolation_reports(self):
        gold = TenantSpec(
            name="gold", workload=ycsb_b(key_count=64, value_len=64),
            clients=2, ops_per_client=20, rate_ops_s=200_000.0,
            slo_ns=20_000.0,
        )
        bulk = TenantSpec(
            name="bulk", workload=ycsb_a(key_count=64, value_len=64),
            clients=3, ops_per_client=20, rate_ops_s=300_000.0,
            slo_ns=80_000.0, curve=ArrivalCurve(kind="burst"),
        )
        report = run_load(small_spec(tenants=(gold, bulk)))
        assert [t.name for t in report.tenants] == ["gold", "bulk"]
        assert report.tenants[0].ops == 40
        assert report.tenants[1].ops == 60
        assert report.clients == 5

    def test_rmw_mix_runs(self):
        spec = small_spec(
            tenants=(
                TenantSpec(
                    name="f", workload=ycsb_f(key_count=64, value_len=64),
                    clients=2, ops_per_client=20, rate_ops_s=100_000.0,
                    slo_ns=50_000.0,
                ),
            )
        )
        report = run_load(spec)
        assert report.total_errors == 0
        assert report.tenants[0].ops == 40

    def test_open_loop_latency_includes_queueing(self):
        """Overdriving the store must surface as queueing delay in the
        measured (arrival-anchored) latencies — no coordinated omission."""
        fast = run_load(small_spec()).tenants[0]
        slow = run_load(
            small_spec(
                tenants=(
                    TenantSpec(
                        name="t0",
                        workload=ycsb_b(key_count=128, value_len=64),
                        clients=4,
                        ops_per_client=25,
                        rate_ops_s=4 * 50_000_000.0,  # far over capacity
                        slo_ns=25_000.0,
                    ),
                )
            )
        ).tenants[0]
        assert slow.p99_ns > 2 * fast.p99_ns

    def test_validation(self):
        with pytest.raises(ConfigError):
            LoadSpec(tenants=())
        t = TenantSpec(name="x", workload=ycsb_b(key_count=16, value_len=64))
        with pytest.raises(ConfigError):
            LoadSpec(tenants=(t, t))  # duplicate names
        with pytest.raises(ConfigError):
            LoadSpec(tenants=(t,), admission_watermark=-1)
        with pytest.raises(ConfigError):
            TenantSpec(name="", workload=ycsb_b())
        with pytest.raises(ConfigError):
            TenantSpec(name="x", workload=ycsb_b(), rate_ops_s=0.0)


class TestCompletionBatching:
    def test_batching_reduces_events_and_preserves_results(self):
        base = small_spec()
        on = run_load(base)
        off = run_load(
            LoadSpec(
                tenants=base.tenants, completion_batching=False,
                settle_ns=base.settle_ns,
            )
        )
        assert on.sim["batched_waits"] > 0
        assert on.sim["events_processed"] < off.sim["events_processed"]
        # same ops complete either way
        assert on.tenants[0].ops == off.tenants[0].ops
        assert on.total_errors == off.total_errors == 0

    def test_batching_off_reports_no_counters(self):
        off = run_load(small_spec(completion_batching=False))
        assert "batches" not in off.sim


class TestAdmissionControl:
    def test_shed_and_retry_closes_the_loop(self):
        """A watermark of 1 under a client fan-in must shed requests
        (ERR_BUSY), and the attached retry policy must re-offer them so
        every scheduled op still completes."""
        spec = small_spec(
            tenants=(
                TenantSpec(
                    name="t0",
                    workload=ycsb_a(key_count=64, value_len=64),
                    clients=8,
                    ops_per_client=25,
                    rate_ops_s=8 * 2_000_000.0,  # deliberately bursty
                    slo_ns=100_000.0,
                ),
            ),
            admission_watermark=1,
        )
        report = run_load(spec)
        assert report.admission is not None
        assert report.admission["watermark"] == 1
        assert report.admission["shed"] > 0
        assert report.resilience["enabled"]
        assert report.resilience["retries"] >= report.admission["shed"]
        # the congestion loop converges: nothing is lost
        assert report.tenants[0].ops + report.tenants[0].errors == 200
        assert report.tenants[0].errors == 0
        # everyone admitted eventually departs
        assert report.admission["inflight"] == 0

    def test_admission_off_reports_nothing(self):
        report = run_load(small_spec())
        assert report.admission is None
        assert not report.resilience["enabled"]


class TestChaosSites:
    def test_client_stall_defers_arrivals(self):
        plan = FaultPlan(
            "stall-everything",
            (
                FaultRule(
                    "client_stall", site="loadgen.arrival",
                    delay_ns=50_000.0, probability=1.0,
                ),
            ),
        )
        clean = run_load(small_spec())
        stalled = run_load(small_spec(fault_plan=plan))
        # every arrival pushed back 50us: the run takes visibly longer
        assert stalled.window_ns > clean.window_ns
        assert stalled.tenants[0].ops == clean.tenants[0].ops

    def test_admission_shed_chaos_forces_busy(self):
        plan = FaultPlan(
            "force-shed",
            (
                FaultRule(
                    "admission_shed", site="admission.enter",
                    probability=0.5, max_fires=20,
                ),
            ),
        )
        spec = small_spec(
            tenants=(
                TenantSpec(
                    name="t0",
                    workload=ycsb_a(key_count=64, value_len=64),
                    clients=4,
                    ops_per_client=25,
                    rate_ops_s=4 * 100_000.0,
                    slo_ns=100_000.0,
                ),
            ),
            admission_watermark=64,  # never organically over
            fault_plan=plan,
        )
        report = run_load(spec)
        assert report.admission["shed"] > 0
        assert report.resilience["retries"] > 0
        assert report.tenants[0].errors == 0  # retries absorb the sheds
