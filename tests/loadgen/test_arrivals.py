"""Arrival-process generation: determinism, rates, curve shapes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.loadgen.arrivals import ArrivalCurve


class TestConstant:
    def test_deterministic(self):
        a = ArrivalCurve().arrivals(np.random.default_rng(3), 1e-3, 500)
        b = ArrivalCurve().arrivals(np.random.default_rng(3), 1e-3, 500)
        assert np.array_equal(a, b)

    def test_ascending_and_after_t0(self):
        t = ArrivalCurve().arrivals(np.random.default_rng(0), 1e-3, 1000, t0=5_000.0)
        assert t[0] > 5_000.0
        assert np.all(np.diff(t) > 0)

    def test_mean_rate(self):
        # 1e-3 ops/ns -> mean gap 1000 ns
        t = ArrivalCurve().arrivals(np.random.default_rng(1), 1e-3, 20_000)
        gaps = np.diff(t)
        assert 950.0 < gaps.mean() < 1050.0

    def test_empty(self):
        assert ArrivalCurve().arrivals(np.random.default_rng(0), 1e-3, 0).size == 0


class TestShapes:
    def test_burst_windows_are_denser(self):
        curve = ArrivalCurve(
            kind="burst", burst_factor=8.0,
            burst_every_ns=10_000.0, burst_len_ns=2_000.0,
        )
        t = curve.arrivals(np.random.default_rng(2), 1e-3, 30_000)
        in_burst = (t % 10_000.0) < 2_000.0
        # burst windows are 20% of time but at 8x rate they should
        # capture the majority of arrivals (8*2 / (8*2 + 8) = 2/3)
        assert in_burst.mean() > 0.55

    def test_diurnal_modulates_rate(self):
        curve = ArrivalCurve(kind="diurnal", amplitude=1.0, period_ns=100_000.0)
        t = curve.arrivals(np.random.default_rng(4), 1e-3, 50_000)
        phase = (t % 100_000.0) / 100_000.0
        rising = ((phase > 0.05) & (phase < 0.45)).sum()  # sin > 0
        falling = ((phase > 0.55) & (phase < 0.95)).sum()  # sin < 0
        assert rising > 2 * falling

    def test_rate_factor_bounds(self):
        c = ArrivalCurve(kind="diurnal", amplitude=0.5)
        for frac in (0.0, 0.25, 0.5, 0.75):
            f = c.rate_factor(frac * c.period_ns)
            assert 0.5 - 1e-9 <= f <= c.peak_factor() + 1e-9

    def test_thinned_deterministic(self):
        c = ArrivalCurve(kind="burst")
        a = c.arrivals(np.random.default_rng(7), 2e-3, 400)
        b = c.arrivals(np.random.default_rng(7), 2e-3, 400)
        assert np.array_equal(a, b)


class TestValidation:
    def test_bad_kind(self):
        with pytest.raises(ConfigError):
            ArrivalCurve(kind="square")

    def test_bad_amplitude(self):
        with pytest.raises(ConfigError):
            ArrivalCurve(kind="diurnal", amplitude=1.5)

    def test_burst_len_exceeds_window(self):
        with pytest.raises(ConfigError):
            ArrivalCurve(kind="burst", burst_every_ns=100.0, burst_len_ns=200.0)

    def test_bad_rate(self):
        with pytest.raises(ConfigError):
            ArrivalCurve().arrivals(np.random.default_rng(0), 0.0, 10)
