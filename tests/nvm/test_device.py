"""NVMDevice: timed operations and cost model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nvm.device import NVMDevice, NVMTiming
from repro.sim.kernel import Environment


class TestTiming:
    def test_cost_functions_affine(self):
        t = NVMTiming()
        assert t.copy_cost(0) == t.store_ns
        assert t.copy_cost(1000) == t.store_ns + 1000 * t.copy_ns_per_byte
        assert t.read_cost(64) == t.read_base_ns + 64 * t.read_ns_per_byte

    def test_flush_cost_per_line(self):
        t = NVMTiming()
        one = t.flush_cost(1)
        assert one == t.flush_line_ns + t.fence_ns
        assert t.flush_cost(65) == 2 * t.flush_line_ns + t.fence_ns

    def test_validation(self):
        with pytest.raises(ConfigError):
            NVMTiming(fence_ns=-1)


class TestDevice:
    def test_copy_in_charges_time_and_writes(self, env):
        dev = NVMDevice(env, 4096)

        def proc():
            yield from dev.copy_in(100, b"payload")
            return env.now

        elapsed = env.run(env.process(proc()))
        assert elapsed == pytest.approx(dev.timing.copy_cost(7))
        assert dev.read(100, 7) == b"payload"
        assert not dev.is_persistent(100, 7)

    def test_persist_charges_and_flushes(self, env):
        dev = NVMDevice(env, 4096)
        dev.write(0, b"x" * 100)

        def proc():
            lines = yield from dev.persist(0, 100)
            return lines, env.now

        lines, elapsed = env.run(env.process(proc()))
        assert lines == 2
        assert elapsed == pytest.approx(dev.timing.flush_cost(100))
        assert dev.is_persistent(0, 100)

    def test_persist_clean_range_charges_full_sweep(self, env):
        """Timing covers issuing CLWBs even over clean lines."""
        dev = NVMDevice(env, 4096)

        def proc():
            lines = yield from dev.persist(0, 128)
            return lines, env.now

        lines, elapsed = env.run(env.process(proc()))
        assert lines == 0
        assert elapsed == pytest.approx(dev.timing.flush_cost(128))

    def test_load_returns_data(self, env):
        dev = NVMDevice(env, 4096)
        dev.write(5, b"abc")

        def proc():
            data = yield from dev.load(5, 3)
            return data

        assert env.run(env.process(proc())) == b"abc"

    def test_store_atomic(self, env):
        dev = NVMDevice(env, 4096)

        def proc():
            yield from dev.store(8, b"12345678", atomic=True)

        env.run(env.process(proc()))
        assert dev.read(8, 8) == b"12345678"

    def test_crash_delegates(self, env):
        dev = NVMDevice(env, 4096)
        dev.write(0, b"gone")
        dev.crash(np.random.default_rng(0), evict_probability=0.0)
        assert dev.read(0, 4) == b"\x00" * 4
