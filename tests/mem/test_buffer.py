"""PersistentBuffer: the volatility/persistence boundary."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MemoryAccessError
from repro.mem.buffer import CACHELINE, PersistentBuffer


def rng(seed=0):
    return np.random.default_rng(seed)


class TestBasics:
    def test_write_visible_not_durable(self):
        buf = PersistentBuffer(1024)
        buf.write(10, b"hello")
        assert buf.read(10, 5) == b"hello"
        assert buf.read_durable(10, 5) == b"\x00" * 5
        assert not buf.is_persistent(10, 5)

    def test_flush_makes_durable(self):
        buf = PersistentBuffer(1024)
        buf.write(10, b"hello")
        flushed = buf.flush(10, 5)
        assert flushed == 1  # one line covers it
        assert buf.read_durable(10, 5) == b"hello"
        assert buf.is_persistent(10, 5)

    def test_flush_skips_clean_lines(self):
        buf = PersistentBuffer(1024)
        buf.write(0, b"a" * CACHELINE)
        assert buf.flush(0, 1024) == 1  # only the dirty line written back

    def test_empty_write_and_flush(self):
        buf = PersistentBuffer(256)
        buf.write(0, b"")
        assert buf.dirty_line_count() == 0
        assert buf.flush(0, 0) == 0
        assert buf.is_persistent(0, 0)

    def test_bounds_checked(self):
        buf = PersistentBuffer(64)
        with pytest.raises(MemoryAccessError):
            buf.write(60, b"xxxxx")
        with pytest.raises(MemoryAccessError):
            buf.read(-1, 4)
        with pytest.raises(MemoryAccessError):
            buf.read(0, 65)

    def test_invalid_size(self):
        with pytest.raises(MemoryAccessError):
            PersistentBuffer(0)

    def test_dirty_lines_span(self):
        buf = PersistentBuffer(1024)
        buf.write(60, b"x" * 10)  # straddles lines 0 and 1
        assert buf.dirty_line_count() == 2
        assert buf.dirty_lines_in(0, 128) == 2
        assert buf.dirty_lines_in(128, 128) == 0


class TestAtomic64:
    def test_aligned_write(self):
        buf = PersistentBuffer(64)
        buf.write_atomic64(8, b"12345678")
        assert buf.read(8, 8) == b"12345678"

    def test_misaligned_rejected(self):
        buf = PersistentBuffer(64)
        with pytest.raises(MemoryAccessError):
            buf.write_atomic64(4, b"12345678")

    def test_wrong_size_rejected(self):
        buf = PersistentBuffer(64)
        with pytest.raises(MemoryAccessError):
            buf.write_atomic64(0, b"1234")


class TestCrash:
    def test_crash_without_eviction_loses_dirty(self):
        buf = PersistentBuffer(256)
        buf.write(0, b"keep")
        buf.flush(0, 4)
        buf.write(64, b"lose")
        summary = buf.crash(rng(), evict_probability=0.0)
        assert summary == {"evicted": 0, "lost": 1, "torn": 0}
        assert buf.read(0, 4) == b"keep"
        assert buf.read(64, 4) == b"\x00" * 4

    def test_crash_with_full_eviction_keeps_everything(self):
        buf = PersistentBuffer(256)
        buf.write(64, b"survive")
        buf.crash(rng(), evict_probability=1.0)
        assert buf.read(64, 7) == b"survive"
        assert buf.read_durable(64, 7) == b"survive"

    def test_crash_clears_dirty_state(self):
        buf = PersistentBuffer(256)
        buf.write(0, b"x")
        buf.crash(rng(), evict_probability=0.5)
        assert buf.dirty_line_count() == 0
        assert bytes(buf.visible) == bytes(buf.durable)

    def test_crash_line_granular(self):
        """Each dirty line flips independently (seed chosen to split)."""
        buf = PersistentBuffer(4 * CACHELINE)
        for line in range(4):
            buf.write(line * CACHELINE, bytes([line + 1]) * CACHELINE)
        buf.crash(rng(123), evict_probability=0.5)
        kept = [
            line
            for line in range(4)
            if buf.read(line * CACHELINE, 1) != b"\x00"
        ]
        assert 0 < len(kept) < 4  # seed 123 gives a mix

    def test_invalid_probability(self):
        buf = PersistentBuffer(64)
        with pytest.raises(MemoryAccessError):
            buf.crash(rng(), evict_probability=1.5)

    def test_flushed_data_never_lost(self):
        buf = PersistentBuffer(1024)
        buf.write(100, b"important")
        buf.flush(100, 9)
        buf.write(100, b"uncommitt")  # re-dirty the same range
        buf.crash(rng(7), evict_probability=0.0)
        assert buf.read(100, 9) == b"important"


class TestSharedLineIsolation:
    def test_neighbor_dirtying_does_not_unpersist(self):
        """A flushed range stays persistent when a neighbour in the same
        cacheline is dirtied afterwards (byte-level rescue check)."""
        buf = PersistentBuffer(256)
        buf.write(0, b"A" * 16)
        buf.flush(0, 16)
        buf.write(16, b"B" * 16)  # same line, different bytes
        assert buf.is_persistent(0, 16)
        assert not buf.is_persistent(16, 16)

    def test_crash_preserves_flushed_neighbor(self):
        buf = PersistentBuffer(256)
        buf.write(0, b"A" * 16)
        buf.flush(0, 16)
        buf.write(16, b"B" * 16)
        buf.crash(rng(), evict_probability=0.0)
        assert buf.read(0, 16) == b"A" * 16
        assert buf.read(16, 16) == b"\x00" * 16


@st.composite
def _ops(draw):
    kind = draw(st.sampled_from(["write", "flush"]))
    addr = draw(st.integers(0, 1000))
    if kind == "write":
        data = draw(st.binary(min_size=1, max_size=24))
        return ("write", addr, data)
    length = draw(st.integers(0, 64))
    return ("flush", addr, length)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(_ops(), max_size=30), st.integers(0, 2**32 - 1))
    def test_crash_state_invariants(self, ops, seed):
        """After any op sequence + crash: visible == durable, nothing
        dirty, and every byte equals either a written-then-flushed value
        or something that was visible at crash time."""
        buf = PersistentBuffer(1024)
        shadow_flushed = bytearray(1024)  # lower bound: explicit flushes
        for op in ops:
            if op[0] == "write":
                _, addr, data = op
                if addr + len(data) <= 1024:
                    buf.write(addr, data)
            else:
                _, addr, length = op
                if addr + length <= 1024:
                    buf.flush(addr, length)
        pre_visible = bytes(buf.visible)
        pre_durable = bytes(buf.durable)
        buf.crash(np.random.default_rng(seed), evict_probability=0.5)
        assert bytes(buf.visible) == bytes(buf.durable)
        assert buf.dirty_line_count() == 0
        # line-granular atomicity: every post-crash line is exactly the
        # pre-crash visible line (evicted) or the pre-crash durable line
        # (lost) — never a mix, never anything else
        post = bytes(buf.visible)
        for line in range(1024 // CACHELINE):
            seg = slice(line * CACHELINE, (line + 1) * CACHELINE)
            assert post[seg] in (pre_visible[seg], pre_durable[seg])

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=128), st.integers(0, 800))
    def test_flush_then_crash_roundtrip(self, data, addr):
        buf = PersistentBuffer(1024)
        if addr + len(data) > 1024:
            addr = 1024 - len(data)
        buf.write(addr, data)
        buf.flush(addr, len(data))
        buf.crash(np.random.default_rng(0), evict_probability=0.0)
        assert buf.read(addr, len(data)) == data
