"""StructLayout: declarative binary records."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.mem.layout import StructLayout


DEMO = StructLayout(
    "demo", [("a", "B"), ("pad", "B"), ("b", "H"), ("c", "I"), ("d", "Q")]
)


class TestLayout:
    def test_size_and_offsets(self):
        assert DEMO.size == 1 + 1 + 2 + 4 + 8
        assert DEMO.offset_of("a") == 0
        assert DEMO.offset_of("b") == 2
        assert DEMO.offset_of("d") == 8
        assert DEMO.size_of("d") == 8

    def test_pack_unpack_roundtrip(self):
        raw = DEMO.pack(a=1, pad=0, b=515, c=70000, d=1 << 40)
        rec = DEMO.unpack(raw)
        assert (rec.a, rec.b, rec.c, rec.d) == (1, 515, 70000, 1 << 40)

    def test_little_endian(self):
        raw = DEMO.pack(a=0, pad=0, b=0x0102, c=0, d=0)
        assert raw[2:4] == b"\x02\x01"

    def test_pack_missing_field(self):
        with pytest.raises(ConfigError, match="missing"):
            DEMO.pack(a=1)

    def test_pack_unknown_field(self):
        with pytest.raises(ConfigError, match="unknown"):
            DEMO.pack(a=1, pad=0, b=0, c=0, d=0, zz=9)

    def test_unpack_wrong_size(self):
        with pytest.raises(ConfigError):
            DEMO.unpack(b"\x00" * 3)

    def test_unpack_from_offset(self):
        raw = b"\xff" * 4 + DEMO.pack(a=7, pad=0, b=1, c=2, d=3)
        assert DEMO.unpack_from(raw, 4).a == 7

    def test_single_field_pack(self):
        packed = DEMO.pack_field("b", 0xBEEF)
        assert packed == (0xBEEF).to_bytes(2, "little")

    def test_single_field_unpack(self):
        raw = DEMO.pack(a=9, pad=0, b=77, c=5, d=6)
        assert DEMO.unpack_field("b", raw) == 77
        assert DEMO.unpack_field("d", b"\x00" * 4 + raw, record_offset=4) == 6

    def test_bytes_field(self):
        lay = StructLayout("s", [("tag", "4s"), ("n", "I")])
        raw = lay.pack(tag=b"ABCD", n=5)
        rec = lay.unpack(raw)
        assert rec.tag == b"ABCD" and rec.n == 5

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            StructLayout("bad", [("x", "B"), ("x", "B")])

    def test_unsupported_code_rejected(self):
        with pytest.raises(ConfigError):
            StructLayout("bad", [("f", "d")])  # no floats on NVM records

    def test_unknown_field_lookup(self):
        with pytest.raises(ConfigError):
            DEMO.offset_of("nope")


@given(
    a=st.integers(0, 255),
    b=st.integers(0, 0xFFFF),
    c=st.integers(0, 0xFFFFFFFF),
    d=st.integers(0, (1 << 64) - 1),
)
def test_roundtrip_property(a, b, c, d):
    raw = DEMO.pack(a=a, pad=0, b=b, c=c, d=d)
    rec = DEMO.unpack(raw)
    assert (rec.a, rec.b, rec.c, rec.d) == (a, b, c, d)
