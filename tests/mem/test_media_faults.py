"""The media-fault model: seeded latent corruption, torn persists, and
the word-granular crash tearing that motivates them."""

import numpy as np
import pytest

from repro.errors import MemoryAccessError
from repro.mem.buffer import ATOMIC_WORD, CACHELINE, PersistentBuffer


def _buf(size=1024):
    return PersistentBuffer(size)


class TestCorrupt:
    def test_bitflip_hits_durable_and_clean_visible(self):
        buf = _buf()
        buf.write(0, bytes([0x00]) * 64)
        buf.flush(0, 64)
        summary = buf.corrupt(5, "bitflip")
        assert summary["kind"] == "bitflip" and summary["masked"] is False
        assert buf.durable[5] == 1 << summary["bit"]
        # line was clean: the rot is immediately visible to reads
        assert buf.visible[5] == buf.durable[5]

    def test_dirty_line_masks_rot_until_writeback(self):
        buf = _buf()
        buf.write(0, bytes([0x7F]) * 64)
        buf.flush(0, 64)
        buf.write(3, b"\x7f")  # re-dirty the line with the same data
        summary = buf.corrupt(3, "bitflip")
        assert summary["masked"] is True
        assert buf.visible[3] == 0x7F  # cache still holds the good byte
        assert buf.durable[3] != 0x7F
        buf.flush(0, 64)  # writeback heals the media
        assert buf.durable[3] == 0x7F

    def test_zero_line_zeroes_the_whole_cacheline(self):
        buf = _buf()
        buf.write(0, bytes([0xEE]) * 2 * CACHELINE)
        buf.flush(0, 2 * CACHELINE)
        buf.corrupt(CACHELINE + 7, "zero_line")
        assert bytes(buf.durable[CACHELINE : 2 * CACHELINE]) == bytes(CACHELINE)
        # the neighbouring line is untouched
        assert bytes(buf.durable[:CACHELINE]) == bytes([0xEE]) * CACHELINE

    def test_seeded_bit_choice_is_deterministic(self):
        picks = set()
        for _ in range(3):
            buf = _buf()
            buf.write(0, bytes(64))
            buf.flush(0, 64)
            s = buf.corrupt(0, "bitflip", rng=np.random.default_rng(42))
            picks.add(s["bit"])
        assert len(picks) == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(MemoryAccessError):
            _buf().corrupt(0, "cosmic-ray")


class TestFlushTorn:
    def test_leaves_exactly_one_word_stale_and_redirty(self):
        buf = _buf()
        old = bytes(range(64))
        buf.write(0, old)
        buf.flush(0, 64)
        new = bytes([0xCD]) * 64
        buf.write(0, new)
        buf.flush_torn(0, 64, np.random.default_rng(1))
        stale = [
            w
            for w in range(64 // ATOMIC_WORD)
            if bytes(buf.durable[w * ATOMIC_WORD : (w + 1) * ATOMIC_WORD])
            == old[w * ATOMIC_WORD : (w + 1) * ATOMIC_WORD]
        ]
        assert len(stale) == 1
        assert buf.stats.torn_stores == 1
        # the tear is honest: its line is dirty again, so a later flush
        # completes the store instead of hiding the lost word forever
        assert not buf.is_persistent(0, 64)
        buf.flush(0, 64)
        assert bytes(buf.durable[:64]) == new

    def test_subword_ranges_degrade_to_plain_flush(self):
        buf = _buf()
        buf.write(0, b"\x11" * 4)
        buf.flush_torn(0, 4, np.random.default_rng(0))
        assert bytes(buf.durable[:4]) == b"\x11" * 4
        assert buf.stats.torn_stores == 0


class TestWordGranularCrash:
    def test_wide_store_tears_at_word_granularity(self):
        buf = _buf()
        old = bytes(range(64))
        buf.write(0, old)
        buf.flush(0, 64)
        new = bytes([0xAB]) * 64
        buf.write(0, new)  # dirty full line
        summary = buf.crash(np.random.default_rng(0), 0.5, tear_words=True)
        assert summary["torn"] == 1
        # every aligned word resolved atomically: old bytes or new bytes,
        # never a blend inside one word
        mixed = set()
        for w in range(64 // ATOMIC_WORD):
            got = bytes(buf.durable[w * ATOMIC_WORD : (w + 1) * ATOMIC_WORD])
            assert got in (
                old[w * ATOMIC_WORD : (w + 1) * ATOMIC_WORD],
                new[w * ATOMIC_WORD : (w + 1) * ATOMIC_WORD],
            )
            mixed.add(got == new[w * ATOMIC_WORD : (w + 1) * ATOMIC_WORD])
        assert mixed == {True, False}  # the line really landed partially

    def test_aligned_word_store_stays_atomic(self):
        buf = _buf()
        buf.write_atomic64(0, b"\x01" * 8)
        buf.flush(0, 8)
        buf.write_atomic64(0, b"\x02" * 8)
        for seed in range(8):
            clone = _buf()
            clone.write_atomic64(0, b"\x01" * 8)
            clone.flush(0, 8)
            clone.write_atomic64(0, b"\x02" * 8)
            clone.crash(np.random.default_rng(seed), 0.5, tear_words=True)
            assert bytes(clone.durable[:8]) in (b"\x01" * 8, b"\x02" * 8)

    def test_same_seed_same_outcome(self):
        imgs = []
        for _ in range(2):
            buf = _buf()
            buf.write(0, bytes(range(256)))
            buf.crash(np.random.default_rng(9), 0.5, tear_words=True)
            imgs.append(bytes(buf.durable))
        assert imgs[0] == imgs[1]
