"""Run the doctests embedded in module/class docstrings — they are part
of the documentation contract."""

import doctest

import pytest

import repro.crc.cost
import repro.mem.layout
import repro.sim.rng

MODULES = [repro.crc.cost, repro.mem.layout, repro.sim.rng]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} failures"
    assert results.attempted > 0, f"{module.__name__} lost its doctests"
