"""Event tracing."""

import io

from repro.sim.kernel import Environment
from repro.sim.trace import Tracer


def test_records_processed_events(env):
    with Tracer(env) as tracer:
        def proc():
            yield env.timeout(5)
            yield env.timeout(5)

        env.process(proc())
        env.run()
    counts = tracer.counts()
    assert counts.get("Timeout") == 2
    assert counts.get("Process") == 1


def test_uninstall_stops_recording(env):
    tracer = Tracer(env).install()
    env.timeout(1)
    env.run()
    n = len(tracer.records)
    tracer.uninstall()
    env.timeout(1)
    env.run()
    assert len(tracer.records) == n


def test_stream_output(env):
    buf = io.StringIO()
    with Tracer(env, stream=buf):
        env.timeout(3)
        env.run()
    assert "Timeout" in buf.getvalue()


def test_limit_bounds_memory(env):
    with Tracer(env, limit=10) as tracer:
        for _ in range(50):
            env.timeout(1)
        env.run()
    assert len(tracer.records) <= 11


def test_tracer_over_a_store_run(env):
    """The tracer attaches to a full store simulation without
    perturbing results, and sees the event mix."""
    import sys

    sys.path.insert(0, ".")
    from tests.conftest import run1, small_store

    setup = small_store("ca", env)
    c = setup.client()

    def work():
        yield from c.put(b"key-00000000trce", b"x" * 64)
        return (yield from c.get(b"key-00000000trce", size_hint=64))

    with Tracer(env) as tracer:
        value = run1(env, work())
    assert value == b"x" * 64
    counts = tracer.counts()
    assert counts.get("Timeout", 0) > 5  # verb/handler stages
    assert counts.get("Process", 0) >= 1
