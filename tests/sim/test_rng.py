"""Deterministic RNG stream registry."""

import numpy as np
from hypothesis import given, strategies as st

from repro.sim.rng import RngRegistry, fnv1a_64


class TestFnv:
    def test_known_vectors(self):
        # FNV-1a 64 reference values
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C
        assert fnv1a_64("a") == fnv1a_64(b"a")

    @given(st.binary(max_size=64))
    def test_fits_64_bits(self, data):
        assert 0 <= fnv1a_64(data) < 1 << 64

    @given(st.binary(min_size=1, max_size=32))
    def test_sensitive_to_last_byte(self, data):
        flipped = data[:-1] + bytes([data[-1] ^ 0xFF])
        assert fnv1a_64(data) != fnv1a_64(flipped)


class TestRegistry:
    def test_memoised(self):
        reg = RngRegistry(1)
        assert reg.stream("x") is reg.stream("x")

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("workload").random(8)
        b = RngRegistry(7).stream("workload").random(8)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(64)
        b = reg.stream("b").random(64)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("s").random(8)
        b = RngRegistry(2).stream("s").random(8)
        assert not np.array_equal(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = RngRegistry(3)
        s = reg1.stream("main")
        _ = s.random(4)
        rest1 = s.random(8)

        reg2 = RngRegistry(3)
        s2 = reg2.stream("main")
        _ = s2.random(4)
        _ = reg2.stream("unrelated").random(100)  # interleaved new stream
        rest2 = s2.random(8)
        assert np.array_equal(rest1, rest2)

    def test_fork_independent(self):
        parent = RngRegistry(5)
        child = parent.fork("child")
        assert not np.array_equal(
            parent.stream("s").random(8), child.stream("s").random(8)
        )
