"""Interrupted waiters must never leak reservations or swallow items.

Regression tests for the crash-fidelity bugs these hooks fixed: a server
stopped mid-crash leaves processes interrupted while queued on the NIC
engine (Resource), the SRQ (FilterStore), a mailbox (Store), or a
semaphore — none of which may strand later traffic.
"""

from repro.sim.kernel import Environment, Interrupt
from repro.sim.resources import FilterStore, Resource, Semaphore, Store


def test_interrupted_resource_waiter_releases_queue_slot(env):
    res = Resource(env, capacity=1)
    order = []

    def holder():
        req = yield from res.acquire()
        yield env.timeout(100)
        res.release(req)

    def victim():
        try:
            yield from res.acquire()
        except Interrupt:
            order.append("victim interrupted")

    def survivor():
        yield env.timeout(10)
        req = yield from res.acquire()
        order.append(("survivor got it", env.now))
        res.release(req)

    env.process(holder())
    v = env.process(victim())
    env.process(survivor())

    def killer():
        yield env.timeout(5)
        v.interrupt()

    env.process(killer())
    env.run()
    assert order == ["victim interrupted", ("survivor got it", 100.0)]
    assert res.count == 0 and res.queue_length == 0


def test_interrupted_store_getter_does_not_swallow_item(env):
    store = Store(env)
    got = []

    def victim():
        try:
            yield store.get()
        except Interrupt:
            pass

    def survivor():
        yield env.timeout(10)
        item = yield store.get()
        got.append(item)

    v = env.process(victim())
    env.process(survivor())

    def killer_then_put():
        yield env.timeout(5)
        v.interrupt()
        yield env.timeout(10)
        yield store.put("precious")

    env.process(killer_then_put())
    env.run()
    assert got == ["precious"]


def test_interrupted_filterstore_getter_pruned(env):
    fs = FilterStore(env)
    got = []

    def victim():
        try:
            yield fs.get(lambda x: True)
        except Interrupt:
            pass

    def survivor():
        yield env.timeout(10)
        item = yield fs.get(lambda x: x == "msg")
        got.append(item)

    v = env.process(victim())
    env.process(survivor())

    def driver():
        yield env.timeout(5)
        v.interrupt()
        yield env.timeout(10)
        fs.put("msg")

    env.process(driver())
    env.run()
    assert got == ["msg"]
    assert len(fs._getters) == 0


def test_interrupted_semaphore_waiter_skipped(env):
    sem = Semaphore(env)
    got = []

    def victim():
        try:
            yield sem.acquire()
        except Interrupt:
            pass

    def survivor():
        yield env.timeout(10)
        yield sem.acquire()
        got.append(env.now)

    v = env.process(victim())
    env.process(survivor())

    def driver():
        yield env.timeout(5)
        v.interrupt()
        yield env.timeout(10)
        sem.release()

    env.process(driver())
    env.run()
    assert got == [15.0]
    assert sem.count == 0


def test_bare_unyielded_event_still_served(env):
    """An acquire event not yet yielded (no callbacks) must still be
    granted — abandonment only triggers via explicit unsubscription."""
    sem = Semaphore(env)
    ev = sem.acquire()  # no process attached yet
    sem.release()
    assert ev.triggered

    def late_waiter():
        got = yield ev
        return env.now

    assert env.run(env.process(late_waiter())) == 0.0


def test_interrupt_before_first_step_is_deliverable(env):
    """A process interrupted before it ever ran still gets the
    interrupt right after its first yield."""
    log = []

    def proc():
        try:
            yield env.timeout(1000)
        except Interrupt as i:
            log.append(i.cause)

    p = env.process(proc())
    p.interrupt("early")  # before the Initialize event processed
    env.run()
    assert log == ["early"]
