"""Property-based kernel checks: determinism, clock monotonicity, and
conservation under randomly structured process trees."""

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Environment


@st.composite
def _program(draw):
    """A random little program: list of (spawn_delay, [timeouts])."""
    n_procs = draw(st.integers(1, 6))
    return [
        (
            draw(st.floats(0, 100)),
            draw(st.lists(st.floats(0, 50), min_size=1, max_size=6)),
        )
        for _ in range(n_procs)
    ]


def _execute(program):
    env = Environment()
    log = []

    def worker(pid, delays):
        for i, d in enumerate(delays):
            yield env.timeout(d)
            log.append((env.now, pid, i))

    def spawner():
        for pid, (delay, delays) in enumerate(program):
            yield env.timeout(delay)
            env.process(worker(pid, delays))

    env.process(spawner())
    env.run()
    return log, env.now


@settings(max_examples=60, deadline=None)
@given(_program())
def test_deterministic_replay(program):
    assert _execute(program) == _execute(program)


@settings(max_examples=60, deadline=None)
@given(_program())
def test_clock_monotone_and_complete(program):
    log, end = _execute(program)
    times = [t for t, _, _ in log]
    assert times == sorted(times)
    # every scheduled step ran exactly once
    expected = sum(len(delays) for _, delays in program)
    assert len(log) == expected
    # the final time equals the slowest chain (spawner delays accumulate)
    slowest = 0.0
    spawn_at = 0.0
    for delay, delays in program:
        spawn_at += delay
        slowest = max(slowest, spawn_at + sum(delays))
    assert end == max(times)
    assert abs(max(times) - slowest) < 1e-9 * max(1.0, slowest)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.1, 20), min_size=1, max_size=8),
    st.integers(1, 3),
)
def test_resource_conservation(durations, capacity):
    """Never more than `capacity` concurrent holders, no lost grants."""
    from repro.sim.resources import Resource

    env = Environment()
    res = Resource(env, capacity=capacity)
    active = [0]
    peak = [0]
    served = [0]

    def user(d):
        req = yield from res.acquire()
        active[0] += 1
        peak[0] = max(peak[0], active[0])
        yield env.timeout(d)
        active[0] -= 1
        served[0] += 1
        res.release(req)

    for d in durations:
        env.process(user(d))
    env.run()
    assert served[0] == len(durations)
    assert peak[0] <= capacity
    assert res.count == 0 and res.queue_length == 0
