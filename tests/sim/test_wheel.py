"""Wheel scheduler: ordering across the wheel/overflow boundary,
timeout-freelist recycling, absolute-time scheduling, and counters."""

import pytest

from repro.errors import SimulationError
from repro.sim.heapkernel import HeapEnvironment
from repro.sim.kernel import (
    Environment,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    Timeout,
)
from repro.sim.resources import Store

#: One full wheel window (_WHEEL_BUCKETS * _BUCKET_NS).
WINDOW = 1024 * 128.0


def _dispatch_order(env_cls, schedule):
    """Schedule ``(delay, priority, tag)`` entries, return dispatch order."""
    env = env_cls()
    order = []
    for delay, priority, tag in schedule:
        ev = env.event()
        ev.callbacks.append(lambda _e, t=tag: order.append(t))
        env.schedule(ev, delay=delay, priority=priority)
    env.run()
    return order


class TestBoundaryOrdering:
    def test_wheel_and_heap_agree_across_horizon(self):
        """Same-timestamp groups on both sides of the wheel horizon keep
        the exact (time, priority, sequence) order the heap produces."""
        sched = []
        stamps = (0.0, 100.0, WINDOW - 1.0, WINDOW, WINDOW + 1.0, WINDOW * 3)
        for i, base in enumerate(stamps):
            sched.append((base, PRIORITY_NORMAL, f"n{i}"))
            sched.append((base, PRIORITY_URGENT, f"u{i}"))
            sched.append((base, PRIORITY_NORMAL, f"n{i}b"))
            sched.append((base, PRIORITY_LOW, f"l{i}"))
        wheel = _dispatch_order(Environment, sched)
        heap = _dispatch_order(HeapEnvironment, sched)
        assert wheel == heap
        assert wheel[:4] == ["u0", "n0", "n0b", "l0"]

    def test_overflow_migration_preserves_order(self):
        """Entries that migrate from the overflow heap into wheel buckets
        dispatch in exactly the order the plain heap produces."""
        sched = [
            (float((k * 37) % 5000) * 100.0, PRIORITY_NORMAL, k)
            for k in range(200)
        ]
        assert _dispatch_order(Environment, sched) == _dispatch_order(
            HeapEnvironment, sched
        )

    def test_schedule_behind_cursor_after_idle_run(self):
        """A schedule at ``now`` right after run(until=...) advanced the
        clock past the cursor's bucket must still dispatch (and first)."""
        env = Environment()
        env.timeout(WINDOW * 2.4)  # force cursor scans across the window
        env.run(until=WINDOW * 2.5)
        order = []
        ev = env.event()
        ev.callbacks.append(lambda _e: order.append("now"))
        env.schedule(ev, delay=0.0)
        later = env.timeout(1.0)
        later.callbacks.append(lambda _e: order.append("later"))
        env.run()
        assert order == ["now", "later"]


class TestTimeoutFreelist:
    def test_plain_timeout_recycled(self):
        env = Environment()

        def proc():
            t1 = env.timeout(5.0)
            yield t1
            # t1 is recycled only after our resume returns to dispatch
            # (the resumed frame may still inspect it), so reuse shows
            # up one allocation later.
            t2 = env.timeout(7.0)
            assert t2 is not t1
            yield t2
            t3 = env.timeout(3.0)
            assert t3 is t1  # recycled through the freelist
            assert t3.delay == 3.0
            yield t3

        env.run(env.process(proc()))

    def test_subscribed_timeout_not_recycled(self):
        env = Environment()
        seen = []

        def proc():
            t1 = env.timeout(5.0)
            t1.callbacks.append(seen.append)
            yield t1
            t2 = env.timeout(5.0)
            assert t2 is not t1
            yield t2

        env.run(env.process(proc()))
        assert len(seen) == 1

    def test_directly_constructed_timeout_never_pooled(self):
        env = Environment()

        def proc():
            t1 = Timeout(env, 5.0)
            assert not t1._pooled
            yield t1
            assert t1 not in env._free_timeouts

        env.run(env.process(proc()))


class TestAbsoluteScheduling:
    def test_timeout_at_fires_at_absolute_time(self):
        env = Environment()

        def proc():
            yield env.timeout(3.0)
            yield env.timeout_at(10.5)
            assert env.now == 10.5

        env.run(env.process(proc()))

    def test_timeout_at_exact_float(self):
        """timeout_at(when) wakes at exactly ``when`` — no now + delta
        float round-trip (the property the analytic fast path needs)."""
        env = Environment()
        target = 0.1 + 0.2  # not exactly representable as 0.3

        def proc():
            yield env.timeout(1e-3)
            yield env.timeout_at(target)
            assert env.now == target

        env.run(env.process(proc()))

    def test_timeout_at_past_raises(self):
        env = Environment()

        def proc():
            yield env.timeout(5.0)
            env.timeout_at(1.0)

        with pytest.raises(SimulationError):
            env.run(env.process(proc()))


class TestCounters:
    def test_events_counters_track(self):
        env = Environment()

        def proc():
            for _ in range(10):
                yield env.timeout(1.0)

        env.run(env.process(proc()))
        # 10 timeouts + the Initialize event + the process-completion event.
        assert env.events_scheduled == 12
        assert env.events_processed == 12


class TestStorePutNowait:
    def test_put_nowait_roundtrip(self):
        env = Environment()
        store = Store(env)

        def proc():
            assert store.put_nowait("a") is True
            got = yield store.get()
            return got

        assert env.run(env.process(proc())) == "a"

    def test_put_nowait_full_store(self):
        env = Environment()
        store = Store(env, capacity=1)
        assert store.put_nowait(1) is True
        assert store.put_nowait(2) is False
        assert list(store.items) == [1]

    def test_put_nowait_hands_to_waiting_getter(self):
        env = Environment()
        store = Store(env)

        def consumer():
            got = yield store.get()
            return got

        # consumer registers its getter, then the producer hands over
        p = env.process(consumer())

        def producer():
            yield env.timeout(1.0)
            assert store.put_nowait("x") is True

        env.process(producer())
        assert env.run(p) == "x"
        assert len(store) == 0
