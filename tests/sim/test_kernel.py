"""Kernel semantics: events, processes, time, ordering, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    PRIORITY_URGENT,
    Timeout,
)


class TestEvent:
    def test_untriggered_state(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        with pytest.raises(SimulationError):
            _ = ev.value
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_delivers_value(self, env):
        ev = env.event()
        ev.succeed(41)
        assert ev.triggered and ev.ok and ev.value == 41
        env.run()
        assert ev.processed

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(ValueError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_unhandled_failure_escalates(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defused()
        env.run()  # no raise


class TestTimeout:
    def test_advances_clock(self, env):
        env.timeout(125.0)
        env.run()
        assert env.now == 125.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_carries_value(self, env):
        def proc():
            got = yield env.timeout(5, value="hello")
            return got

        assert env.run(env.process(proc())) == "hello"


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return 99

        assert env.run(env.process(proc())) == 99

    def test_sequential_timeouts_accumulate(self, env):
        def proc():
            yield env.timeout(10)
            yield env.timeout(5)
            return env.now

        assert env.run(env.process(proc())) == 15.0

    def test_requires_generator(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_yield_non_event_rejected(self, env):
        def proc():
            yield 42

        env.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_exception_propagates_to_waiter(self, env):
        def failing():
            yield env.timeout(1)
            raise RuntimeError("inner")

        def waiter():
            try:
                yield env.process(failing())
            except RuntimeError as exc:
                return f"caught {exc}"

        assert env.run(env.process(waiter())) == "caught inner"

    def test_unwaited_failure_escalates(self, env):
        def failing():
            yield env.timeout(1)
            raise RuntimeError("lonely")

        env.process(failing())
        with pytest.raises(RuntimeError, match="lonely"):
            env.run()

    def test_wait_on_already_processed_event(self, env):
        ev = env.event()
        ev.succeed("early")
        env.run()
        assert ev.processed

        def proc():
            got = yield ev
            return got

        assert env.run(env.process(proc())) == "early"

    def test_processes_communicate_via_events(self, env):
        box = env.event()

        def producer():
            yield env.timeout(7)
            box.succeed("payload")

        def consumer():
            got = yield box
            return (env.now, got)

        env.process(producer())
        assert env.run(env.process(consumer())) == (7.0, "payload")

    def test_is_alive(self, env):
        def proc():
            yield env.timeout(10)

        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, env):
        def sleeper():
            try:
                yield env.timeout(1000)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        p = env.process(sleeper())

        def interrupter():
            yield env.timeout(10)
            p.interrupt("wake up")

        env.process(interrupter())
        assert env.run(p) == ("interrupted", "wake up", 10.0)

    def test_interrupted_process_can_continue(self, env):
        def sleeper():
            try:
                yield env.timeout(1000)
            except Interrupt:
                pass
            yield env.timeout(5)
            return env.now

        p = env.process(sleeper())

        def interrupter():
            yield env.timeout(10)
            p.interrupt()

        env.process(interrupter())
        assert env.run(p) == 15.0

    def test_uncaught_interrupt_fails_process_quietly(self, env):
        def sleeper():
            yield env.timeout(1000)

        p = env.process(sleeper())

        def interrupter():
            yield env.timeout(1)
            p.interrupt("die")

        env.process(interrupter())
        env.run()  # must not escalate
        assert p.triggered and not p.ok

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupt_does_not_consume_target_event(self, env):
        """The event the process waited on still fires for others."""
        shared = env.timeout(50, value="tick")

        def victim():
            try:
                yield shared
            except Interrupt:
                return "out"

        def other():
            got = yield shared
            return got

        v = env.process(victim())

        def interrupter():
            yield env.timeout(1)
            v.interrupt()

        env.process(interrupter())
        o = env.process(other())
        assert env.run(o) == "tick"


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        def proc():
            result = yield AllOf(env, [env.timeout(5, "a"), env.timeout(9, "b")])
            return (env.now, result.values())

        now, values = env.run(env.process(proc()))
        assert now == 9.0
        assert values == ["a", "b"]

    def test_any_of_returns_first(self, env):
        def proc():
            result = yield AnyOf(env, [env.timeout(5, "fast"), env.timeout(9, "slow")])
            return (env.now, result.values())

        now, values = env.run(env.process(proc()))
        assert now == 5.0
        assert values == ["fast"]

    def test_operator_sugar(self, env):
        def proc():
            yield env.timeout(3) & env.timeout(4)
            t_and = env.now
            yield env.timeout(10) | env.timeout(2)
            return (t_and, env.now)

        assert env.run(env.process(proc())) == (4.0, 6.0)

    def test_all_of_fails_fast(self, env):
        bad = env.event()

        def proc():
            try:
                yield AllOf(env, [env.timeout(100), bad])
            except ValueError:
                return env.now

        def failer():
            yield env.timeout(2)
            bad.fail(ValueError("nope"))

        env.process(failer())
        assert env.run(env.process(proc())) == 2.0

    def test_empty_all_of_succeeds_immediately(self, env):
        def proc():
            result = yield AllOf(env, [])
            return len(result)

        assert env.run(env.process(proc())) == 0


class TestRun:
    def test_run_until_time(self, env):
        env.timeout(10)
        env.timeout(100)
        env.run(until=50)
        assert env.now == 50.0

    def test_run_until_past_rejected(self, env):
        env.timeout(10)
        env.run(until=20)
        with pytest.raises(SimulationError):
            env.run(until=5)

    def test_run_drains_queue(self, env):
        env.timeout(10)
        env.timeout(30)
        env.run()
        assert env.now == 30.0
        assert env.peek() == float("inf")

    def test_run_until_never_triggering_event(self, env):
        ev = env.event()
        env.timeout(5)
        with pytest.raises(SimulationError, match="ran out of events"):
            env.run(until=ev)

    def test_step_empty_queue_rejected(self, env):
        with pytest.raises(SimulationError):
            env.step()


class TestDeterminism:
    def test_same_time_events_process_in_schedule_order(self, env):
        order = []
        for tag in "abc":
            env.timeout(5).callbacks.append(lambda _e, t=tag: order.append(t))
        env.run()
        assert order == ["a", "b", "c"]

    def test_urgent_priority_wins(self, env):
        order = []
        t = env.timeout(5)
        t.callbacks.append(lambda _e: order.append("normal"))
        ev = Event(env)
        ev._ok = True
        ev._value = None
        ev.callbacks.append(lambda _e: order.append("urgent"))

        def scheduler():
            yield env.timeout(5 - 5)  # schedule at t=0
            env.schedule(ev, delay=5, priority=PRIORITY_URGENT)

        env.process(scheduler())
        env.run()
        assert order == ["urgent", "normal"]

    def test_full_simulation_repeatable(self):
        def world(env):
            results = []

            def worker(i):
                yield env.timeout(i * 3.7)
                results.append((env.now, i))
                yield env.timeout(1.1)
                results.append((env.now, -i))

            for i in range(10):
                env.process(worker(i))
            env.run()
            return results

        assert world(Environment()) == world(Environment())
