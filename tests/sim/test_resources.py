"""Resource, Store, FilterStore and Semaphore semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Environment
from repro.sim.resources import FilterStore, Resource, Semaphore, Store


class TestResource:
    def test_grants_up_to_capacity(self, env):
        res = Resource(env, capacity=2)
        r1, r2, r3 = res.request(), res.request(), res.request()
        assert r1.triggered and r2.triggered and not r3.triggered
        assert res.count == 2 and res.queue_length == 1

    def test_release_grants_fifo(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        r3 = res.request()
        res.release(r1)
        assert r2.triggered and not r3.triggered
        res.release(r2)
        assert r3.triggered

    def test_cancel_queued_request(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel while queued
        r3 = res.request()
        res.release(r1)
        assert r3.triggered

    def test_release_unknown_rejected(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        res.release(r1)
        with pytest.raises(SimulationError):
            res.release(r1)

    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_context_manager_releases(self, env):
        res = Resource(env, capacity=1)
        done = []

        def user(i):
            with res.request() as req:
                yield req
                yield env.timeout(10)
                done.append((i, env.now))

        env.process(user(0))
        env.process(user(1))
        env.run()
        assert done == [(0, 10.0), (1, 20.0)]

    def test_acquire_helper(self, env):
        res = Resource(env, capacity=1)

        def proc():
            req = yield from res.acquire()
            assert res.count == 1
            res.release(req)
            return res.count

        assert env.run(env.process(proc())) == 0

    def test_serializes_contending_processes(self, env):
        """Throughput through a capacity-1 resource is one holder at a time."""
        res = Resource(env, capacity=1)
        spans = []

        def user():
            req = yield from res.acquire()
            start = env.now
            yield env.timeout(5)
            res.release(req)
            spans.append((start, env.now))

        for _ in range(4):
            env.process(user())
        env.run()
        for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
            assert s2 >= e1


class TestStore:
    def test_fifo_order(self, env):
        store = Store(env)

        def producer():
            for i in range(3):
                yield store.put(i)

        def consumer():
            out = []
            for _ in range(3):
                item = yield store.get()
                out.append(item)
            return out

        env.process(producer())
        assert env.run(env.process(consumer())) == [0, 1, 2]

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def consumer():
            item = yield store.get()
            return (env.now, item)

        def producer():
            yield env.timeout(42)
            store.put("x")

        env.process(producer())
        assert env.run(env.process(consumer())) == (42.0, "x")

    def test_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)

        def producer():
            yield store.put("a")
            yield store.put("b")  # blocks until 'a' consumed
            return env.now

        def consumer():
            yield env.timeout(30)
            yield store.get()

        env.process(consumer())
        assert env.run(env.process(producer())) == 30.0

    def test_try_get(self, env):
        store = Store(env)
        assert store.try_get() == (False, None)
        store.put("z")
        env.run()
        assert store.try_get() == (True, "z")

    def test_invalid_capacity(self, env):
        with pytest.raises(SimulationError):
            Store(env, capacity=0)


class TestFilterStore:
    def test_predicate_skips_nonmatching(self, env):
        fs = FilterStore(env)
        fs.put("apple")
        fs.put("banana")

        def proc():
            item = yield fs.get(lambda x: x.startswith("b"))
            return item

        assert env.run(env.process(proc())) == "banana"
        assert fs.items == ["apple"]

    def test_waiting_getter_woken_by_match(self, env):
        fs = FilterStore(env)

        def consumer():
            item = yield fs.get(lambda x: x == "target")
            return (env.now, item)

        def producer():
            yield env.timeout(5)
            fs.put("noise")
            yield env.timeout(5)
            fs.put("target")

        env.process(producer())
        assert env.run(env.process(consumer())) == (10.0, "target")
        assert fs.items == ["noise"]

    def test_two_getters_different_predicates(self, env):
        fs = FilterStore(env)
        got = {}

        def consumer(name, pred):
            item = yield fs.get(pred)
            got[name] = item

        env.process(consumer("evens", lambda x: x % 2 == 0))
        env.process(consumer("odds", lambda x: x % 2 == 1))

        def producer():
            yield env.timeout(1)
            fs.put(3)
            fs.put(4)

        env.process(producer())
        env.run()
        assert got == {"evens": 4, "odds": 3}

    def test_try_get_with_predicate(self, env):
        fs = FilterStore(env)
        fs.put(1)
        fs.put(2)
        ok, item = fs.try_get(lambda x: x > 1)
        assert (ok, item) == (True, 2)
        assert fs.try_get(lambda x: x > 10) == (False, None)

    def test_unfiltered_get_is_fifo(self, env):
        fs = FilterStore(env)
        fs.put("first")
        fs.put("second")

        def proc():
            a = yield fs.get()
            b = yield fs.get()
            return [a, b]

        assert env.run(env.process(proc())) == ["first", "second"]


class TestSemaphore:
    def test_initial_count(self, env):
        sem = Semaphore(env, initial=2)
        a, b, c = sem.acquire(), sem.acquire(), sem.acquire()
        assert a.triggered and b.triggered and not c.triggered
        sem.release()
        assert c.triggered

    def test_release_accumulates(self, env):
        sem = Semaphore(env)
        sem.release(3)
        assert sem.count == 3
        assert sem.acquire().triggered
        assert sem.count == 2

    def test_negative_initial_rejected(self, env):
        with pytest.raises(SimulationError):
            Semaphore(env, initial=-1)
