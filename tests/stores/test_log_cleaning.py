"""Two-stage log cleaning (§4.4): correctness under concurrency."""

import pytest

from repro.sim.kernel import Environment
from tests.conftest import run1, small_store


def _key(i: int) -> bytes:
    return f"key-{i:012d}".encode()


class TestCleaningCycle:
    def _fill(self, env, setup, n_keys=20, versions=3, vlen=64):
        c = setup.client()

        def work():
            for v in range(versions):
                for i in range(n_keys):
                    yield from c.put(_key(i), f"v{v:03d}".encode() + bytes([i]) * (vlen - 4))

        run1(env, work())
        env.run(until=env.now + 500_000)  # background settles

    def test_cleaning_preserves_every_key(self, env):
        setup = small_store("efactory", env)
        self._fill(env, setup)
        server = setup.server

        proc = server.trigger_cleaning()
        env.run(proc)
        assert server.cleaner.stats.cycles == 1

        c = setup.client()

        def check():
            out = []
            for i in range(20):
                v = yield from c.get(_key(i), size_hint=64)
                out.append(v[:4] == b"v002" and v[4:] == bytes([i]) * 60)
            return out

        assert all(run1(env, check()))

    def test_cleaning_reclaims_stale_versions(self, env):
        setup = small_store("efactory", env)
        self._fill(env, setup, n_keys=10, versions=5)
        server = setup.server
        old_pool = server.pools[server.write_pool_id]
        used_before = old_pool.used

        proc = server.trigger_cleaning()
        env.run(proc)
        new_pool = server.pools[server.write_pool_id]
        # 50 versions compacted to 10 live objects
        assert new_pool.used < used_before
        assert len(new_pool.allocations) == 10
        assert server.cleaner.stats.moved == 10
        assert server.cleaner.stats.skipped_stale == 40

    def test_write_pool_swapped(self, env):
        setup = small_store("efactory", env)
        self._fill(env, setup, n_keys=4)
        server = setup.server
        before = server.write_pool_id
        env.run(server.trigger_cleaning())
        assert server.write_pool_id == 1 - before
        # old pool recycled
        assert server.pools[before].used == 0

    def test_entries_point_to_new_pool_after_cleaning(self, env):
        setup = small_store("efactory", env)
        self._fill(env, setup, n_keys=8)
        server = setup.server
        new_pool_id = 1 - server.write_pool_id
        env.run(server.trigger_cleaning())
        for i in range(8):
            found = server.lookup_slot(_key(i))
            assert found is not None
            _, cur, alt = found
            assert cur is not None and cur.pool == new_pool_id
            assert alt is None  # promoted and cleared

    def test_moved_objects_are_durable(self, env):
        setup = small_store("efactory", env)
        self._fill(env, setup, n_keys=6)
        server = setup.server
        env.run(server.trigger_cleaning())
        for i in range(6):
            found = server.lookup_slot(_key(i))
            from repro.baselines.base import ObjectLocation

            cur = found[1]
            loc = ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
            img = server.read_object(loc)
            assert img.durable
            pool = server.pools[cur.pool]
            assert server.device.is_persistent(pool.abs_addr(cur.offset), cur.size)

    def test_second_cycle_works(self, env):
        setup = small_store("efactory", env)
        self._fill(env, setup, n_keys=5)
        server = setup.server
        env.run(server.trigger_cleaning())
        self._fill(env, setup, n_keys=5)  # more garbage
        env.run(server.trigger_cleaning())
        assert server.cleaner.stats.cycles == 2
        c = setup.client()

        def check():
            return (yield from c.get(_key(0), size_hint=64))

        assert run1(env, check())[:4] == b"v002"


class TestConcurrentOperations:
    def test_ops_during_cleaning_survive(self, env):
        """Clients keep reading and writing throughout a cleaning cycle;
        afterwards every key serves its newest value."""
        setup = small_store("efactory", env, pool_size=1 << 20)
        server = setup.server
        c = setup.client()
        writer_c = type(c)(env, server, name="writer2")

        def preload():
            for i in range(16):
                yield from c.put(_key(i), b"base" + bytes([i]) * 60)

        run1(env, preload())
        env.run(until=env.now + 500_000)

        latest = {}

        def churn():
            for round_ in range(30):
                i = round_ % 16
                value = f"r{round_:03d}".encode() + bytes([i]) * 59
                yield from writer_c.put(_key(i), value)
                latest[i] = value
                got = yield from writer_c.get(_key(i), size_hint=64)
                assert got == value, (round_, got[:8])
                yield from writer_c.poll_notifications()

        churn_proc = env.process(churn())
        clean_proc = server.trigger_cleaning()
        env.run(env.all_of([churn_proc, clean_proc]))

        def verify():
            for i, expected in latest.items():
                got = yield from c.get(_key(i), size_hint=64)
                assert got == expected, i
            return True

        assert run1(env, verify())

    def test_clients_notified_and_restored(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def preload():
            for i in range(6):
                yield from c.put(_key(i), b"x" * 64)

        run1(env, preload())
        env.run(until=env.now + 300_000)
        server = setup.server
        clean = server.trigger_cleaning()

        def poller():
            # poll until cleaning mode observed, then until restored
            saw_cleaning = False
            for _ in range(10_000):
                yield from c.poll_notifications()
                if c.cleaning_mode:
                    saw_cleaning = True
                if saw_cleaning and not c.cleaning_mode:
                    return True
                yield env.timeout(1_000)
            return False

        p = env.process(poller())
        assert env.run(p) is True

    def test_reads_during_cleaning_use_rpc(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def preload():
            for i in range(6):
                yield from c.put(_key(i), b"y" * 64)

        run1(env, preload())
        env.run(until=env.now + 300_000)
        server = setup.server
        clean = server.trigger_cleaning()

        def read_during():
            # wait until the notification arrives, then read
            while not c.cleaning_mode:
                yield from c.poll_notifications()
                yield env.timeout(500)
            before = c.fallback_reads
            yield from c.get(_key(0), size_hint=64)
            return c.fallback_reads - before

        assert env.run(env.process(read_during())) == 1

    def test_trigger_is_idempotent_while_running(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def preload():
            for i in range(4):
                yield from c.put(_key(i), b"z" * 64)

        run1(env, preload())
        p1 = setup.server.trigger_cleaning()
        assert setup.server.trigger_cleaning() is None
        env.run(p1)
        assert setup.server.cleaner.stats.cycles == 1


class TestAutoTrigger:
    def test_cleaning_fires_when_pool_fills(self, env):
        setup = small_store(
            "efactory",
            env,
            pool_size=64 * 1024,
            auto_clean=True,
            reserve_fraction=0.3,
        )
        c = setup.client()

        def work():
            # each object ~192B aligned; write until past the threshold
            for i in range(260):
                yield from c.put(_key(i % 40), bytes([i % 256]) * 100)
                yield from c.poll_notifications()

        run1(env, work())
        env.run(until=env.now + 2_000_000)
        assert setup.server.cleaner.stats.cycles >= 1
