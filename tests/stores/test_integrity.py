"""The self-healing integrity tier (PR 8): per-stripe parity + checksum
ledger let the scrubber rebuild a rotten durable head *in place* —
keeping the newest acked version — instead of rolling back or clearing.
The integrity-tree mode adds end-to-end detection on the cache-warm
1-READ GET path."""

import pytest

from repro.errors import ConfigError
from repro.integrity import PARITY_PAGE, PoolIntegrity
from repro.kv.hashtable import key_fingerprint
from repro.kv.objects import HEADER_SIZE
from tests.conftest import run1, small_store

#: Scrubber + the integrity tier at the shipped defaults.
PARITY = {
    "scrub_interval_ns": 2_000.0,
    "parity_stripe_kb": 4,
    "integrity_tree": True,
}


def _key(i):
    return f"integ-{i:010d}".encode()


def _head_loc(setup, key, part_id=0):
    part = setup.server.partitions[part_id]
    entry_off = part.table.find(key_fingerprint(key))
    assert entry_off is not None
    cur = part.table.read_cur(entry_off)
    assert cur is not None
    return part, cur


def _corrupt_value(setup, key, part_id=0):
    """Flip one bit in ``key``'s head value; returns the stripe index."""
    part, cur = _head_loc(setup, key, part_id)
    pool = part.pools[cur.pool]
    addr = pool.abs_addr(cur.offset) + HEADER_SIZE + len(key)
    setup.server.device.corrupt(addr, "bitflip")
    stripe_bytes = setup.server.config.parity_stripe_kb * 1024
    return (cur.pool, (cur.offset + HEADER_SIZE + len(key)) // stripe_bytes)


def _settle(env, ns=800_000):
    env.run(until=env.now + ns)


def _wait_for_scrub(env, setup, field, deadline_ns=80_000_000):
    scrubber = setup.server.scrubber
    deadline = env.now + deadline_ns
    while env.now < deadline and scrubber.stats()[field] == 0:
        env.run(until=env.now + 1_000_000)
    return scrubber.stats()


class TestConfig:
    def test_defaults_off(self, env):
        setup = small_store("efactory", env)
        assert setup.server.config.parity_stripe_kb == 0
        assert all(p.integrity is None for p in setup.server.partitions)

    def test_tree_requires_parity(self, env):
        with pytest.raises(ConfigError):
            small_store("efactory", env, integrity_tree=True)

    def test_parity_on_attaches_the_tier(self, env):
        setup = small_store("efactory", env, parity_stripe_kb=4)
        assert all(p.integrity is not None for p in setup.server.partitions)
        assert "integrity" in setup.server.metrics()


class TestParityMath:
    """PoolIntegrity against a raw device window (no store)."""

    def _pool(self, env):
        from repro.kv.logpool import LogPool
        from repro.nvm.device import NVMDevice

        device = NVMDevice(env, 64 << 10)
        # data window [0, 32K), integrity regions carved after it
        pool = LogPool(device, base=0, size=32 << 10)
        return pool, PoolIntegrity(device, pool, 4096, 32 << 10)

    def test_reconstruct_single_fault(self, env):
        pool, pi = self._pool(env)
        a = bytes(range(64)) * 2
        b = bytes(reversed(range(64))) * 2
        pool.write(0, a)
        pool.write(2048, b)  # same 4K stripe, same parity columns
        pi.cover(0, a)
        pi.cover(2048, b)
        pool.write(0, b"\x00" * 128)  # destroy a entirely
        assert pi.reconstruct(0, 128, lambda raw: raw == a) == a

    def test_multi_fault_same_stripe_fails(self, env):
        pool, pi = self._pool(env)
        a, b = b"A" * 128, b"B" * 128
        pool.write(0, a)
        pool.write(2048, b)
        pi.cover(0, a)
        pi.cover(2048, b)
        pool.write(0, b"\x00" * 128)
        pool.write(2048, b"\x00" * 128)
        assert pi.reconstruct(0, 128, lambda raw: raw == a) is None

    def test_different_stripes_are_independent(self, env):
        pool, pi = self._pool(env)
        a, b = b"A" * 128, b"B" * 128
        pool.write(0, a)
        pool.write(4096, b)  # next stripe
        pi.cover(0, a)
        pi.cover(4096, b)
        pool.write(0, b"\x00" * 128)
        pool.write(4096, b"\x00" * 128)
        assert pi.reconstruct(0, 128, lambda raw: raw == a) == a
        assert pi.reconstruct(4096, 128, lambda raw: raw == b) == b

    def test_mutation_keeps_parity_current(self, env):
        pool, pi = self._pool(env)
        a = b"A" * 128
        pool.write(0, a)
        pi.cover(0, a)
        old = bytes(pool.read(8, 8))
        pool.write(8, b"XYZWXYZW")  # in-place field update
        pi.mutate(0, 8, old)
        expect = bytes(pool.read(0, 128))
        pool.write(0, b"\x00" * 128)
        assert pi.reconstruct(0, 128, lambda raw: raw == expect) == expect

    def test_page_column_mapping(self):
        # byte at pool offset o lands in parity column o % PARITY_PAGE
        assert PARITY_PAGE == 256


class TestReconstructingRepair:
    def test_single_fault_head_rebuilt_in_place(self, env):
        """The PR-8 acceptance bar: a single-fault-per-stripe corruption
        of a durable head is repaired by reconstruction — the *newest*
        version survives; no rollback, no cleared key."""
        setup = small_store("efactory", env, **PARITY)
        c = setup.client()
        v1, v2 = b"A" * 64, b"B" * 64

        run1(env, c.put(_key(0), v1))
        _settle(env)
        run1(env, c.put(_key(0), v2))
        _settle(env)

        _corrupt_value(setup, _key(0))
        stats = _wait_for_scrub(env, setup, "reconstructed")
        assert stats["reconstructed"] >= 1
        assert stats["repaired"] == 0  # no rollback
        assert stats["unrepairable"] == 0  # no cleared key
        got = run1(env, c.get(_key(0), size_hint=64))
        assert got == v2  # the newest version, rebuilt in place

    def test_every_stripe_single_fault_all_reconstructed(self, env):
        """Seeded sweep: one corruption per distinct stripe, across many
        keys — every one must come back by reconstruction."""
        setup = small_store("efactory", env, **PARITY)
        c = setup.client()
        # Values must never equal freshly-zeroed pool bytes (an all-zero
        # value "verifies" before the WRITE even lands); 160-byte values
        # also spread the log across several 4K stripes.
        values = {i: bytes([i + 1]) * 160 for i in range(24)}

        def load():
            for i, v in values.items():
                yield from c.put(_key(i), v)

        run1(env, load())
        _settle(env, 3_000_000)

        hit_stripes, corrupted = set(), []
        for i in values:
            part, cur = _head_loc(setup, _key(i))
            stripe = (cur.pool, (cur.offset + HEADER_SIZE + 16) // 4096)
            if stripe in hit_stripes:
                continue  # one fault per stripe only
            hit_stripes.add(stripe)
            _corrupt_value(setup, _key(i))
            corrupted.append(i)
        assert len(corrupted) >= 2  # the sweep spans several stripes

        deadline = env.now + 120_000_000
        scrubber = setup.server.scrubber
        while (
            env.now < deadline
            and scrubber.stats()["reconstructed"] < len(corrupted)
        ):
            env.run(until=env.now + 1_000_000)
        stats = scrubber.stats()
        assert stats["reconstructed"] == len(corrupted)
        assert stats["repaired"] == 0
        assert stats["unrepairable"] == 0
        for i in corrupted:
            assert run1(env, c.get(_key(i), size_hint=160)) == values[i]

    def test_multi_fault_stripe_falls_back_to_rollback(self, env):
        """Two faults in one stripe *on the same parity column* defeat
        single parity: the scrubber escalates to the PR-6 version
        rollback instead of serving rot."""
        setup = small_store("efactory", env, **PARITY)
        c = setup.client()
        v1a, v1b = b"C" * 160, b"D" * 160
        v2 = b"E" * 160

        run1(env, c.put(_key(50), v1a))
        _settle(env)
        run1(env, c.put(_key(50), v1b))
        _settle(env)
        run1(env, c.put(_key(51), v2))
        _settle(env)

        part, head1 = _head_loc(setup, _key(50))
        _p, head2 = _head_loc(setup, _key(51))
        # 216-byte objects round to 256-byte slots, so the two heads sit
        # exactly one PARITY_PAGE apart: value byte j occupies the same
        # parity column in both. Two same-column faults in one stripe
        # are un-reconstructible from single parity.
        assert (head1.offset - head2.offset) % 256 == 0
        assert head1.offset // 4096 == head2.offset // 4096
        pool = part.pools[head1.pool]
        for head in (head1, head2):
            setup.server.device.corrupt(
                pool.abs_addr(head.offset) + HEADER_SIZE + 16 + 10, "bitflip"
            )

        stats = _wait_for_scrub(env, setup, "parity_stale")
        assert stats["parity_stale"] >= 1  # reconstruction was tried
        # key 50 rolled back to its intact older version; key 51 had no
        # older version left and was cleared (loud miss, never rot).
        deadline = env.now + 80_000_000
        scrubber = setup.server.scrubber
        while env.now < deadline and scrubber.stats()["repaired"] == 0:
            env.run(until=env.now + 1_000_000)
        stats = scrubber.stats()
        assert stats["repaired"] >= 1
        assert run1(env, c.get(_key(50), size_hint=160)) == v1a


class TestIntegrityTree:
    def test_warm_cache_get_detects_rot_end_to_end(self, env):
        """With the tree on, a cache-warm 1-READ GET re-validates the
        image against the ledger: rotten bytes are rejected client-side
        instead of being returned."""
        setup = small_store(
            "efactory", env, loc_cache_size=64,
            parity_stripe_kb=4, integrity_tree=True,
        )
        c = setup.client()
        run1(env, c.put(_key(70), b"E" * 64))
        _settle(env)
        assert run1(env, c.get(_key(70), size_hint=64)) == b"E" * 64

        _corrupt_value(setup, _key(70))
        run1(env, c.get(_key(70), size_hint=64))
        assert c.tree_rejects >= 1  # detected on the 1-READ path
        assert c.read_stats()["tree_rejects"] == c.tree_rejects

    def test_intact_warm_gets_pass_the_tree(self, env):
        setup = small_store(
            "efactory", env, loc_cache_size=64,
            parity_stripe_kb=4, integrity_tree=True,
        )
        c = setup.client()
        run1(env, c.put(_key(71), b"F" * 64))
        _settle(env)
        for _ in range(4):
            assert run1(env, c.get(_key(71), size_hint=64)) == b"F" * 64
        assert c.tree_rejects == 0
        assert c.cache_hits >= 4


class TestGarbageAccounting:
    """Satellite 1 regression: retired rot must be charged as garbage so
    the cleaning trigger eventually reclaims it (it used to sit outside
    the trigger forever)."""

    def test_retired_rot_charges_garbage(self, env):
        setup = small_store("efactory", env, scrub_interval_ns=2_000.0)
        c = setup.client()
        run1(env, c.put(_key(80), b"G" * 64))
        _settle(env)
        part, cur = _head_loc(setup, _key(80))
        pool = part.pools[cur.pool]
        assert pool.garbage_bytes == 0
        setup.server.device.corrupt(
            pool.abs_addr(cur.offset) + HEADER_SIZE + 16, "bitflip"
        )
        stats = _wait_for_scrub(env, setup, "unrepairable")
        assert stats["unrepairable"] >= 1
        assert pool.garbage_bytes >= cur.size

    def test_garbage_feeds_the_cleaning_trigger(self, env):
        setup = small_store("efactory", env)
        pool = setup.server.partitions[0].pools[0]
        assert not pool.needs_cleaning()
        pool.add_garbage(int(pool.size * pool.reserve_fraction) + 64)
        assert pool.needs_cleaning()
        pool.reset()
        assert pool.garbage_bytes == 0


class TestCleaningMigration:
    """Satellite 3: an entry migrated by log cleaning (old copy carries
    FLAG_TRANS) that is hit by bitrot at its *new* home must be repaired
    there on the next scrubber lap."""

    def test_mid_migration_rot_repaired_at_new_home(self, env):
        setup = small_store("efactory", env, **PARITY)
        server = setup.server
        c = setup.client()
        values = {i: bytes([64 + i]) * 64 for i in range(12)}

        def load():
            for i, v in values.items():
                yield from c.put(_key(90 + i), v)

        run1(env, load())
        _settle(env, 3_000_000)

        old_wp = server.write_pool_id
        new_pool_id = 1 - old_wp
        proc = server.trigger_cleaning()
        assert proc is not None
        # Pause mid-cycle: at least one object moved, cycle not finished.
        deadline = env.now + 50_000_000
        while env.now < deadline and server.cleaner.stats.moved < 1:
            env.run(until=env.now + 10_000)
        assert server.cleaner.stats.moved >= 1

        # Rot the freshly-moved copy at its new home.
        part = server.partitions[0]
        new_pool = part.pools[new_pool_id]
        moved = new_pool.allocations[0]
        setup.server.device.corrupt(
            new_pool.abs_addr(moved.offset) + HEADER_SIZE + 16 + 5, "bitflip"
        )

        env.run(proc)  # let the cleaning cycle finish
        stats = _wait_for_scrub(env, setup, "reconstructed")
        assert stats["reconstructed"] >= 1
        assert stats["unrepairable"] == 0
        for i, v in values.items():
            assert run1(env, c.get(_key(90 + i), size_hint=64)) == v


class TestRecoveryRebuild:
    def test_parity_rebuilt_after_crash_still_reconstructs(self, env):
        """Crash + recover wipes nothing: the rebuilt parity/ledger must
        keep reconstructing post-recovery rot."""
        import numpy as np

        from repro.core.recovery import recover_bucketized

        setup = small_store("efactory", env, **PARITY)
        c = setup.client()
        run1(env, c.put(_key(99), b"H" * 64))
        _settle(env)

        server = setup.server
        server.stop()
        setup.fabric.crash_node(server.node, np.random.default_rng(3), 0.0)
        setup.fabric.restart_node(server.node)
        run1(env, recover_bucketized(server))
        server.start()
        integ = server.partitions[0].integrity
        assert integ is not None and integ.rebuilds >= 1

        _corrupt_value(setup, _key(99))
        stats = _wait_for_scrub(env, setup, "reconstructed")
        assert stats["reconstructed"] >= 1
        assert run1(env, c.get(_key(99), size_hint=64)) == b"H" * 64
