"""Variable-size values.

The paper's experiments use fixed sizes, but the bucketized stores are
size-agnostic: the hash slot carries the object's total footprint, so a
client GET needs no size hint and updates may grow or shrink a value.
(Erda is the documented exception — its 8-byte atomic region has no
room for a size, which is why its GET takes a hint.)
"""

import pytest

from repro.sim.kernel import Environment
from tests.conftest import ALL_STORES, run1, small_store

KEY = b"key-000000000var"

SIZED_STORES = [s for s in ALL_STORES if s != "erda"]


@pytest.mark.parametrize("store", SIZED_STORES)
def test_get_without_size_hint(env, store):
    setup = small_store(store, env)
    c = setup.client()

    def work():
        yield from c.put(KEY, b"q" * 321)
        return (yield from c.get(KEY))  # no hint

    assert run1(env, work()) == b"q" * 321


@pytest.mark.parametrize("store", ["efactory", "ca", "forca"])
def test_value_grows_and_shrinks_across_updates(env, store):
    setup = small_store(store, env)
    c = setup.client()

    def work():
        out = []
        for size in (64, 4096, 16, 1000):
            yield from c.put(KEY, bytes([size % 256]) * size)
            value = yield from c.get(KEY)
            out.append(len(value) == size and value[:1] == bytes([size % 256]))
        return out

    assert all(run1(env, work()))


def test_efactory_mixed_sizes_recovery(env):
    """Rollback across differently-sized versions: the chain walk sizes
    each version from its own header."""
    import numpy as np

    from repro.core.recovery import recover_bucketized
    from repro.workloads.keyspace import make_value, parse_value

    setup = small_store("efactory", env)
    server = setup.server
    c = setup.client()

    def work():
        yield from c.put(KEY, make_value(1, 1, 2048))  # big, will be durable
        yield env.timeout(800_000)
        yield from c.alloc_rpc(KEY, 64, 0xBAD)  # small torn head

    run1(env, work())
    server.stop()
    setup.fabric.crash_node(server.node, np.random.default_rng(1), 0.0)
    setup.fabric.restart_node(server.node)
    report = env.run(env.process(recover_bucketized(server)))
    assert report.keys_rolled_back == 1
    found = server.lookup_slot(KEY)
    from repro.baselines.base import ObjectLocation

    cur = found[1]
    img = server.read_object(
        ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
    )
    assert parse_value(img.value) == (1, 1)
    assert img.vlen == 2048
