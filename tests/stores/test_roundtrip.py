"""Black-box PUT/GET behaviour common to every store."""

import pytest

from repro.errors import KeyNotFoundError, StoreError
from repro.sim.kernel import Environment
from tests.conftest import ALL_STORES, run1, small_store


@pytest.mark.parametrize("store", ALL_STORES)
class TestRoundtrip:
    def test_put_get(self, env, store):
        setup = small_store(store, env)
        c = setup.client()

        def work():
            yield from c.put(b"key-000000000001", b"hello world!")
            return (yield from c.get(b"key-000000000001", size_hint=12))

        assert run1(env, work()) == b"hello world!"

    def test_update_returns_latest(self, env, store):
        setup = small_store(store, env)
        c = setup.client()

        def work():
            for i in range(4):
                yield from c.put(b"key-000000000001", f"value-{i:04d}".encode())
            return (yield from c.get(b"key-000000000001", size_hint=10))

        assert run1(env, work()) == b"value-0003"

    def test_many_keys(self, env, store):
        setup = small_store(store, env)
        c = setup.client()
        keys = [f"user{i:012d}".encode() for i in range(40)]

        def work():
            for i, k in enumerate(keys):
                yield from c.put(k, bytes([i]) * 32)
            out = []
            for i, k in enumerate(keys):
                v = yield from c.get(k, size_hint=32)
                out.append(v == bytes([i]) * 32)
            return out

        assert all(run1(env, work()))

    def test_get_missing_key_raises(self, env, store):
        setup = small_store(store, env)
        c = setup.client()

        def work():
            yield from c.get(b"key-nonexistent!", size_hint=8)

        with pytest.raises(StoreError):
            run1(env, work())

    def test_two_clients_see_each_other(self, env, store):
        setup = small_store(store, env, n_clients=2)
        a, b = setup.clients

        def writer():
            yield from a.put(b"key-000000shared", b"from-a" + b"." * 10)

        def reader():
            yield env.timeout(100_000)  # after the write (and bg settle)
            return (yield from b.get(b"key-000000shared", size_hint=16))

        env.process(writer())
        assert run1(env, reader()) == b"from-a" + b"." * 10

    def test_large_value(self, env, store):
        setup = small_store(store, env)
        c = setup.client()
        value = bytes(range(256)) * 16  # 4 KiB

        def work():
            yield from c.put(b"key-00000000larg", value)
            return (yield from c.get(b"key-00000000larg", size_hint=len(value)))

        assert run1(env, work()) == value

    def test_operations_advance_time(self, env, store):
        setup = small_store(store, env)
        c = setup.client()

        def work():
            t0 = env.now
            yield from c.put(b"key-0000000000tt", b"x" * 64)
            t_put = env.now - t0
            t0 = env.now
            yield from c.get(b"key-0000000000tt", size_hint=64)
            t_get = env.now - t0
            return t_put, t_get

        t_put, t_get = run1(env, work())
        # every store's ops take microseconds, not nothing and not forever
        assert 1_000 < t_put < 100_000
        assert 1_000 < t_get < 100_000
