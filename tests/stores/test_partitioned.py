"""Partitioned server core: key routing, shard isolation, recovery.

The router is shared between server and client (both hash the key
fingerprint), so the pure one-sided READ path never needs an extra
round trip to discover the partition.  Every test here runs with
``num_partitions > 1``; the ``num_partitions=1`` configuration is
covered by the entire rest of the suite (it is the seed behaviour).
"""

import pytest

from repro.errors import ConfigError
from repro.kv.hashtable import key_fingerprint, partition_of_fp
from tests.conftest import run1, small_store


def _key(i: int) -> bytes:
    return f"key-{i:012d}".encode()


def _key_on_partition(part: int, n_parts: int, skip: int = 0) -> bytes:
    """A key the router maps to ``part`` (``skip`` picks later matches)."""
    for i in range(100_000):
        k = _key(i)
        if partition_of_fp(key_fingerprint(k), n_parts) == part:
            if skip == 0:
                return k
            skip -= 1
    raise AssertionError(f"no key found for partition {part}")


class TestRouting:
    def test_client_and_server_agree(self, env):
        setup = small_store("efactory", env, num_partitions=4)
        server, c = setup.server, setup.client()
        for i in range(256):
            fp = key_fingerprint(_key(i))
            expected = partition_of_fp(fp, 4)
            assert server.partition_for_key(_key(i)).part_id == expected
            assert c.partition_of(fp) == expected

    def test_router_covers_all_partitions(self, env):
        setup = small_store("efactory", env, num_partitions=4)
        server = setup.server
        hit = {server.partition_for_key(_key(i)).part_id for i in range(512)}
        assert hit == {0, 1, 2, 3}

    def test_single_partition_compat_facade(self, env):
        """At N=1 the legacy monolithic attributes alias partition 0."""
        setup = small_store("efactory", env)
        server = setup.server
        assert len(server.partitions) == 1
        part = server.partitions[0]
        assert server.table is part.table
        assert server.pools is part.pools
        assert server.write_pool_id == part.write_pool_id
        # no RPC budget resource at N=1: zero extra yields on dispatch
        assert part.cpu is None

    def test_multi_partition_has_budget(self, env):
        setup = small_store("efactory", env, num_partitions=2)
        for part in setup.server.partitions:
            assert part.cpu is not None


class TestPartitionedRoundtrip:
    N_KEYS = 128

    def test_put_get_across_partitions(self, env):
        setup = small_store("efactory", env, num_partitions=4)
        c = setup.client()

        def work():
            for i in range(self.N_KEYS):
                yield from c.put(_key(i), bytes([i % 256]) * 64)
            out = []
            for i in range(self.N_KEYS):
                v = yield from c.get(_key(i), size_hint=64)
                out.append(v == bytes([i % 256]) * 64)
            return out

        assert all(run1(env, work()))

    def test_reads_stay_on_pure_path(self, env):
        setup = small_store("efactory", env, num_partitions=4)
        c = setup.client()

        def load():
            for i in range(self.N_KEYS):
                yield from c.put(_key(i), b"p" * 64)

        run1(env, load())
        env.run(until=env.now + 1_000_000)  # verifier drains, all durable

        def read_all():
            for i in range(self.N_KEYS):
                yield from c.get(_key(i), size_hint=64)

        run1(env, read_all())
        assert c.pure_reads == self.N_KEYS
        assert c.fallback_reads == 0

    def test_keys_land_in_owning_partition(self, env):
        setup = small_store("efactory", env, num_partitions=4)
        server, c = setup.server, setup.client()

        def load():
            for i in range(self.N_KEYS):
                yield from c.put(_key(i), b"q" * 64)

        run1(env, load())
        for i in range(self.N_KEYS):
            part = server.partition_for_key(_key(i))
            found = part.lookup_slot(_key(i))
            assert found is not None and found[1] is not None
            # the object lives in that partition's own log pool
            pool = part.pools[found[1].pool]
            assert found[1].offset < pool.size


class TestPartitionLocalCleaning:
    def _fill(self, env, setup, n_keys=64, versions=3):
        c = setup.client()

        def work():
            for v in range(versions):
                for i in range(n_keys):
                    yield from c.put(
                        _key(i), f"v{v:03d}".encode() + bytes([i]) * 60
                    )

        run1(env, work())
        env.run(until=env.now + 500_000)

    def test_cleaning_one_partition_leaves_others_pure(self, env):
        setup = small_store("efactory", env, num_partitions=4)
        server = setup.server
        self._fill(env, setup)
        c = setup.client()

        target = server.partition_for_key(_key(0)).part_id
        other_key = next(
            _key(i)
            for i in range(1, 64)
            if server.partition_for_key(_key(i)).part_id != target
        )
        other_part = server.partition_for_key(other_key).part_id

        clean = server.trigger_cleaning(part_id=target)
        assert clean is not None

        def read_during():
            # wait until the client learns partition `target` is cleaning
            while not c.partition_cleaning(target):
                yield from c.poll_notifications()
                yield env.timeout(500)
            assert not c.partition_cleaning(other_part)
            pure0, fb0 = c.pure_reads, c.fallback_reads
            yield from c.get(other_key, size_hint=64)      # untouched shard
            yield from c.get(_key(0), size_hint=64)        # cleaning shard
            return (c.pure_reads - pure0, c.fallback_reads - fb0)

        pure_delta, fallback_delta = env.run(env.process(read_during()))
        assert pure_delta == 1      # other partition stayed one-sided
        assert fallback_delta == 1  # cleaning partition fell back to RPC
        env.run(clean)

    def test_cleaning_state_is_per_partition(self, env):
        setup = small_store("efactory", env, num_partitions=4)
        server = setup.server
        self._fill(env, setup)
        target = server.partition_for_key(_key(0)).part_id
        clean = server.trigger_cleaning(part_id=target)

        def probe():
            yield env.timeout(10_000)
            states = [p.cleaning_active for p in server.partitions]
            return states

        states = env.run(env.process(probe()))
        assert states[target] is True
        assert sum(states) == 1
        env.run(clean)
        assert server.partitions[target].cleaner.stats.cycles == 1
        for pid, part in enumerate(server.partitions):
            if pid != target:
                assert part.cleaner.stats.cycles == 0

    def test_trigger_all_partitions_cleans_each(self, env):
        setup = small_store("efactory", env, num_partitions=2)
        server = setup.server
        self._fill(env, setup)
        done = server.trigger_cleaning()
        env.run(done)
        assert server.cleaner.stats.cycles == 2  # merged group stats

        c = setup.client()

        def check():
            out = []
            for i in range(64):
                v = yield from c.get(_key(i), size_hint=64)
                out.append(v[:4] == b"v002")
            return out

        assert all(run1(env, check()))


class TestPartitionedRecovery:
    def test_recovery_merges_all_shards(self, env):
        from repro.core.recovery import recover_bucketized

        setup = small_store("efactory", env, num_partitions=4)
        server, c = setup.server, setup.client()

        def load():
            for i in range(96):
                yield from c.put(_key(i), bytes([i]) * 64)

        run1(env, load())
        env.run(until=env.now + 1_000_000)
        server.stop()

        report = env.run(env.process(recover_bucketized(server)))
        assert report.keys_recovered == 96
        assert report.keys_lost == 0
        # one head per pool per partition (dual pools x 4 shards)
        assert len(report.pool_heads) == 8


class TestPartitionConfig:
    def test_erda_rejects_partitions(self, env):
        with pytest.raises(ConfigError):
            small_store("erda", env, num_partitions=2)

    def test_buckets_must_divide(self, env):
        with pytest.raises(ConfigError):
            small_store("efactory", env, table_buckets=510, num_partitions=4)
