"""Power failure in the middle of log cleaning.

The scariest window in the design: two pools, entries with both slots
valid, chains crossing pools, the cleaner mid-copy. Recovery must still
produce an intact version for every durably-written key, regardless of
when within the cycle the plug is pulled.
"""

import numpy as np
import pytest

from repro.baselines.base import ObjectLocation
from repro.core.recovery import recover_bucketized
from repro.sim.kernel import Environment
from repro.workloads.keyspace import make_value, parse_value
from tests.conftest import run1, small_store


def _key(i):
    return f"key-{i:012d}".encode()


N_KEYS = 24


def _setup_filled(env):
    setup = small_store("efactory", env)
    c = setup.client()

    def load():
        for v in range(3):
            for i in range(N_KEYS):
                yield from c.put(_key(i), make_value(i, v, 128))

    run1(env, load())
    env.run(until=env.now + 1_500_000)  # everything verified+durable
    return setup


def _crash_recover(setup, env, seed):
    setup.server.stop()
    setup.fabric.crash_node(
        setup.server.node, np.random.default_rng(seed), 0.35
    )
    setup.fabric.restart_node(setup.server.node)
    return env.run(env.process(recover_bucketized(setup.server)))


def _audit(setup):
    """Every key must resolve to an intact version with version >= 2
    (v2 was durable before the cleaning cycle began)."""
    server = setup.server
    bad = []
    for i in range(N_KEYS):
        found = server.lookup_slot(_key(i))
        if found is None:
            bad.append((i, "missing entry"))
            continue
        _eoff, cur, alt = found
        slot = cur or alt
        if slot is None:
            bad.append((i, "no slot"))
            continue
        img = server.read_object(
            ObjectLocation(pool=slot.pool, offset=slot.offset, size=slot.size)
        )
        parsed = parse_value(img.value) if img.well_formed else None
        if parsed is None or parsed[0] != i:
            bad.append((i, "torn"))
        elif parsed[1] < 2:
            bad.append((i, f"rolled behind durable v2 to v{parsed[1]}"))
    return bad


@pytest.mark.parametrize("crash_after_ns", [5_000, 60_000, 150_000, 400_000])
def test_crash_at_various_points_in_cycle(crash_after_ns):
    """Crash at increasing depths into the cleaning cycle (during the
    notification phase, compress scan, merge, and after finish)."""
    env = Environment()
    setup = _setup_filled(env)
    proc = setup.server.trigger_cleaning()
    deadline = env.now + crash_after_ns
    env.run(until=deadline)
    _crash_recover(setup, env, seed=int(crash_after_ns))
    bad = _audit(setup)
    assert bad == [], (crash_after_ns, bad)


def test_crash_during_cleaning_with_concurrent_writes():
    """Writes racing the cleaner + crash: durable data must survive;
    newer unverified writes may be lost (eFactory's contract)."""
    env = Environment()
    setup = _setup_filled(env)
    c = setup.clients[0]
    written = {}

    def churn():
        for r in range(60):
            i = r % N_KEYS
            try:
                yield from c.put(_key(i), make_value(i, 10 + r, 128))
                written[i] = 10 + r
            except Exception:
                return

    env.process(churn())
    setup.server.trigger_cleaning()
    env.run(until=env.now + 120_000)  # mid-cycle, mid-churn
    _crash_recover(setup, env, seed=99)
    bad = _audit(setup)
    assert bad == [], bad


def test_recovery_after_completed_cleaning_cycle():
    """Sanity: crash right after a clean finish recovers from the new
    pool only."""
    env = Environment()
    setup = _setup_filled(env)
    env.run(setup.server.trigger_cleaning())
    report = _crash_recover(setup, env, seed=5)
    assert report.keys_lost == 0
    bad = _audit(setup)
    assert bad == [], bad
    # everything lives in the (new) working pool now
    wp = setup.server.write_pool_id
    for i in range(N_KEYS):
        _e, cur, _a = setup.server.lookup_slot(_key(i))
        assert cur.pool == wp
