"""DELETE path: index cleanup, slot consistency, interaction with updates.

``TestDelete`` in test_efactory.py covers the happy path; this file
pins down the index-level invariants — both slots cleared, the object
invalidated in the log, and correct behaviour when the entry holds an
alternative (older) version at delete time.
"""

import pytest

from repro.baselines.base import ObjectLocation
from repro.rdma.rpc import RpcFault
from tests.conftest import run1, small_store

KEY = b"key-000000000042"


def _entry(server, key):
    part = server.partition_for_key(key)
    return part, part.lookup_slot(key)


class TestDeleteIndexState:
    def test_delete_clears_both_slots(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            # two versions so the entry has cur *and* alt populated
            yield from c.put(KEY, b"one" * 21 + b"x")
            yield from c.put(KEY, b"two" * 21 + b"y")
            yield from c.delete(KEY)

        run1(env, work())
        part, found = _entry(setup.server, KEY)
        assert found is not None
        _, cur, alt = found
        assert cur is None and alt is None

    def test_delete_invalidates_log_object(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def put_it():
            yield from c.put(KEY, b"d" * 64)

        run1(env, put_it())
        part, found = _entry(setup.server, KEY)
        loc = ObjectLocation(
            pool=found[1].pool, offset=found[1].offset, size=found[1].size
        )

        def drop_it():
            yield from c.delete(KEY)

        run1(env, drop_it())
        img = part.read_object(loc)
        assert not img.valid  # recovery must not resurrect the key

    def test_deleted_key_is_gone_via_both_read_paths(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"g" * 64)
            yield from c.delete(KEY)

        run1(env, work())

        def read_rpc():
            return (yield from c._rpc_read(KEY))

        with pytest.raises(RpcFault):
            run1(env, read_rpc())

        def read_hybrid():
            return (yield from c.get(KEY, size_hint=64))

        with pytest.raises(RpcFault):
            run1(env, read_hybrid())

    def test_delete_missing_key_is_rpc_error(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.delete(b"key-000000nothere")

        with pytest.raises(RpcFault) as exc:
            run1(env, work())
        assert "not found" in str(exc.value)

    def test_delete_then_reinsert_starts_fresh_chain(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"aaa" * 21 + b"a")
            yield from c.put(KEY, b"bbb" * 21 + b"b")
            yield from c.delete(KEY)
            yield from c.put(KEY, b"ccc" * 21 + b"c")
            return (yield from c.get(KEY, size_hint=64))

        value = run1(env, work())
        assert value[:3] == b"ccc"
        part, found = _entry(setup.server, KEY)
        _, cur, alt = found
        assert cur is not None
        assert alt is None  # no stale alternative survives the delete

    def test_delete_after_cleaning_cycle(self, env):
        """Deleting a compacted key clears the relocated slot too."""
        setup = small_store("efactory", env)
        c = setup.client()

        def fill():
            for v in range(3):
                yield from c.put(KEY, f"v{v:03d}".encode() + b"f" * 60)

        run1(env, fill())
        env.run(until=env.now + 500_000)
        env.run(setup.server.trigger_cleaning())

        def drop():
            yield from c.delete(KEY)
            yield from c.poll_notifications()

        run1(env, drop())
        part, found = _entry(setup.server, KEY)
        _, cur, alt = found
        assert cur is None and alt is None

        def read_back():
            return (yield from c.get(KEY, size_hint=64))

        with pytest.raises(RpcFault):
            run1(env, read_back())
