"""Capacity-limit behaviour: pool exhaustion and index overflow surface
as clean faults at the client, never as corruption."""

import pytest

from repro.errors import StoreError
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Environment
from tests.conftest import run1, small_store


def _key(i):
    return f"key-{i:012d}".encode()


def test_pool_exhaustion_faults_the_put(env):
    # pool fits only a handful of 1 KiB objects
    setup = small_store("efactory", env, pool_size=8192)
    c = setup.client()

    def work():
        for i in range(10):
            yield from c.put(_key(i), b"x" * 1024)

    with pytest.raises((RpcFault, StoreError)):
        run1(env, work())


def test_pool_exhaustion_leaves_existing_data_readable(env):
    setup = small_store("efactory", env, pool_size=8192)
    c = setup.client()
    stored = []

    def work():
        for i in range(10):
            try:
                yield from c.put(_key(i), b"x" * 1024)
                stored.append(i)
            except (RpcFault, StoreError):
                break
        # everything acknowledged before exhaustion still reads back
        for i in stored:
            value = yield from c.get(_key(i), size_hint=1024)
            assert value == b"x" * 1024

    run1(env, work())
    assert stored  # at least one object fit


def test_cleaning_recovers_space_for_new_writes(env):
    """Exhaustion from stale versions is exactly what cleaning fixes."""
    setup = small_store("efactory", env, pool_size=64 * 1024)
    server = setup.server
    c = setup.client()

    def fill():
        # one key, many versions: pool fills with garbage
        for v in range(300):
            try:
                yield from c.put(_key(0), bytes([v % 256]) * 200)
            except (RpcFault, StoreError):
                return v
        return 300

    wrote = run1(env, fill())
    assert wrote < 300  # pool did exhaust
    env.run(until=env.now + 1_000_000)
    env.run(server.trigger_cleaning())

    def more():
        yield from c.put(_key(1), b"fresh" * 40)
        return (yield from c.get(_key(1), size_hint=200))

    assert run1(env, more()) == b"fresh" * 40


def test_hash_overflow_faults_cleanly(env):
    setup = small_store(
        "efactory", env, table_buckets=2, slots_per_bucket=1, probe_limit=1
    )
    c = setup.client()

    def work():
        for i in range(8):
            yield from c.put(_key(i), b"x" * 64)

    with pytest.raises((RpcFault, StoreError)):
        run1(env, work())
