"""Post-crash recovery: pool scans, version rollback, Erda's two-slot
recovery, durable-flag trust."""

import numpy as np
import pytest

from repro.baselines.base import ObjectLocation
from repro.core.recovery import recover_bucketized, recover_erda, scan_pool
from repro.kv.hashtable import key_fingerprint
from repro.kv.objects import HEADER_SIZE
from repro.sim.kernel import Environment
from repro.workloads.keyspace import make_value, parse_value
from tests.conftest import run1, small_store


def _key(i):
    return f"key-{i:012d}".encode()


def _crash(setup, seed=0, evict=0.5):
    setup.server.stop()
    setup.fabric.crash_node(
        setup.server.node, np.random.default_rng(seed), evict
    )
    setup.fabric.restart_node(setup.server.node)


class TestScanPool:
    def test_rebuilds_journal_from_headers(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            for i in range(6):
                yield from c.put(_key(i), bytes([i]) * 64)

        run1(env, work())
        env.run(until=env.now + 500_000)
        pool = setup.server.pools[0]
        expected = [(a.offset, a.size) for a in pool.allocations]
        _crash(setup, evict=1.0)  # keep everything for a clean scan
        scanned = scan_pool(pool)
        assert [(a.offset, a.size) for a in scanned] == expected

    def test_scan_stops_at_torn_header(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            for i in range(3):
                yield from c.put(_key(i), bytes([i]) * 64)

        run1(env, work())
        env.run(until=env.now + 500_000)
        pool = setup.server.pools[0]
        # corrupt the second object's magic
        second = pool.allocations[1]
        pool.write(second.offset, b"\xff\xff")
        assert len(scan_pool(pool)) == 1


class TestBucketizedRecovery:
    def test_all_durable_objects_recovered(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            for i in range(10):
                yield from c.put(_key(i), make_value(i, 1, 64))

        run1(env, work())
        env.run(until=env.now + 800_000)  # all durable
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_bucketized(setup.server)))
        assert report.keys_recovered == 10
        assert report.keys_lost == 0
        assert report.pool_heads[0] > 0

    def test_torn_head_rolls_back_to_previous(self, env):
        setup = small_store("efactory", env)
        server = setup.server
        c = setup.client()

        def work():
            yield from c.put(_key(1), make_value(1, 1, 64))
            yield env.timeout(500_000)  # v1 durable
            # v2: allocate but never deliver the value (torn write)
            yield from c.alloc_rpc(_key(1), 64, 0xBAD)

        run1(env, work())
        # crash before the background timeout hits
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_bucketized(server)))
        assert report.keys_rolled_back == 1
        found = server.lookup_slot(_key(1))
        loc = ObjectLocation(
            pool=found[1].pool, offset=found[1].offset, size=found[1].size
        )
        img = server.read_object(loc)
        assert parse_value(img.value) == (1, 1)

    def test_never_durable_key_cleared(self, env):
        setup = small_store("efactory", env)
        server = setup.server
        c = setup.client()

        def work():
            yield from c.alloc_rpc(_key(7), 64, 0xBAD)  # value never sent

        run1(env, work())
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_bucketized(server)))
        assert report.keys_lost == 1
        found = server.lookup_slot(_key(7))
        assert found is None or found[1] is None

    def test_durable_flag_short_circuits_crc(self, env):
        """Recovery trusts an on-media durability flag (flag is only
        flushed after the value, so it can't lie)."""
        setup = small_store("imm", env)
        c = setup.client()

        def work():
            yield from c.put(_key(3), make_value(3, 1, 64))

        run1(env, work())
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_bucketized(setup.server)))
        # IMM stores no CRC (crc=0); only flag trust can recover it
        assert report.keys_recovered == 1

    def test_recovery_idempotent(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            for i in range(5):
                yield from c.put(_key(i), make_value(i, 1, 64))

        run1(env, work())
        env.run(until=env.now + 800_000)
        _crash(setup, evict=0.0)
        r1 = env.run(env.process(recover_bucketized(setup.server)))
        r2 = env.run(env.process(recover_bucketized(setup.server)))
        assert r1.keys_recovered == r2.keys_recovered == 5
        assert r2.keys_lost == 0

    def test_recovery_charges_time(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            for i in range(5):
                yield from c.put(_key(i), make_value(i, 1, 64))

        run1(env, work())
        env.run(until=env.now + 800_000)
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_bucketized(setup.server)))
        assert report.duration_ns > 0


class TestErdaRecovery:
    def test_intact_entries_survive(self, env):
        setup = small_store("erda", env)
        server = setup.server
        c = setup.client()

        def work():
            for i in range(6):
                yield from c.put(_key(i), make_value(i, 1, 64))

        run1(env, work())
        # force everything durable (as if naturally evicted over time)
        server.device.buffer.flush_all()
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_erda(server)))
        assert report.keys_recovered == 6

    def test_torn_latest_rolls_to_off2(self, env):
        setup = small_store("erda", env)
        server = setup.server
        c = setup.client()

        def work():
            yield from c.put(_key(2), make_value(2, 1, 64))

        run1(env, work())
        server.device.buffer.flush_all()  # v1 fully durable

        def work2():
            yield from c.put(_key(2), make_value(2, 2, 64))

        run1(env, work2())
        # flush only metadata region (the table), not v2's data
        server.device.buffer.flush(0, server.table.table_bytes)
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_erda(server)))
        assert report.keys_rolled_back == 1
        found = server.table.lookup(key_fingerprint(_key(2)))
        assert found[1].off1 is not None

    def test_unrecoverable_key_cleared(self, env):
        setup = small_store("erda", env)
        server = setup.server
        c = setup.client()

        def work():
            yield from c.put(_key(4), make_value(4, 1, 64))

        run1(env, work())
        # persist the index but none of the data
        server.device.buffer.flush(0, server.table.table_bytes)
        _crash(setup, evict=0.0)
        report = env.run(env.process(recover_erda(server)))
        assert report.keys_lost == 1
        found = server.table.lookup(key_fingerprint(_key(4)))
        assert found is None or found[1].off1 is None

    def test_wrong_table_type_rejected(self, env):
        setup = small_store("efactory", env)
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            env.run(env.process(recover_erda(setup.server)))
