"""Multi-client interleaving stress: read freshness under concurrency.

Keys are partitioned among writer clients (one writer per key, so the
version order per key is total); reader clients hammer random keys.
Invariant checked for every consistent store: a GET returns a complete
value whose version is at least the newest version *acknowledged before
the GET was issued* — reads never travel backwards while the system is
up, regardless of scheme.
"""

import pytest

from repro.errors import CorruptObjectError, StoreError
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.keyspace import make_value, parse_value
from tests.conftest import small_store

N_KEYS = 12
VLEN = 192
ROUNDS = 40

CONSISTENT_STORES = [
    "efactory",
    "efactory_nohr",
    "rpc",
    "saw",
    "imm",
    "erda",
    "forca",
]


def _key(i):
    return f"key-{i:012d}".encode()


@pytest.mark.parametrize("store", CONSISTENT_STORES)
def test_reads_are_fresh_and_untorn(store):
    env = Environment()
    setup = small_store(store, env, n_clients=4, pool_size=4 << 20)
    rngs = RngRegistry(17)
    acked = [0] * N_KEYS  # newest acknowledged version per key
    violations = []
    stale_allowed_errors = {"count": 0}

    # preload v0
    def preload():
        c = setup.client(0)
        for i in range(N_KEYS):
            yield from c.put(_key(i), make_value(i, 0, VLEN))

    env.run(env.process(preload()))
    env.run(until=env.now + 1_000_000)

    def writer(w, keys):
        c = setup.client(w)
        ver = 0
        for _ in range(ROUNDS):
            ver += 1
            for i in keys:
                yield from c.put(_key(i), make_value(i, ver, VLEN))
                acked[i] = max(acked[i], ver)

    def reader(r):
        c = setup.client(r)
        rng = rngs.stream(f"reader{r}")
        for _ in range(ROUNDS * 2):
            i = int(rng.integers(0, N_KEYS))
            floor = acked[i]  # acknowledged before the GET is issued
            try:
                value = yield from c.get(_key(i), size_hint=VLEN)
            except (CorruptObjectError, StoreError):
                # Erda may race two in-flight versions; that is a read
                # *failure*, not a wrong answer.
                stale_allowed_errors["count"] += 1
                continue
            parsed = parse_value(value)
            if parsed is None or parsed[0] != i:
                violations.append((i, "torn value"))
            elif parsed[1] < floor:
                violations.append(
                    (i, f"stale: read v{parsed[1]} after v{floor} acked")
                )

    procs = [
        env.process(writer(0, range(0, N_KEYS // 2))),
        env.process(writer(1, range(N_KEYS // 2, N_KEYS))),
        env.process(reader(2)),
        env.process(reader(3)),
    ]
    env.run(env.all_of(procs))
    assert violations == [], violations[:5]


def test_many_clients_share_one_hot_key():
    """8 writers updating one key: every completed GET sees a complete
    value that some writer actually wrote."""
    env = Environment()
    setup = small_store("efactory", env, n_clients=9, pool_size=4 << 20)
    key = _key(0)
    written = set()
    bad = []

    def preload():
        yield from setup.client(0).put(key, make_value(0, 0, VLEN))
        written.add(0)

    env.run(env.process(preload()))

    def writer(w):
        c = setup.client(w)
        for r in range(20):
            ver = (w + 1) * 1000 + r
            written.add(ver)
            yield from c.put(key, make_value(0, ver, VLEN))

    def reader():
        c = setup.client(8)
        for _ in range(60):
            try:
                value = yield from c.get(key, size_hint=VLEN)
            except StoreError:
                continue
            parsed = parse_value(value)
            if parsed is None or parsed[0] != 0 or parsed[1] not in written:
                bad.append(parsed)

    procs = [env.process(writer(w)) for w in range(8)]
    procs.append(env.process(reader()))
    env.run(env.all_of(procs))
    assert bad == [], bad[:5]
