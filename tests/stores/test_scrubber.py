"""The online scrubber: latent media rot on a durable-flagged head is
found by CRC re-verification and repaired by version-list rollback —
the hole eFactory's durability-flag shortcut leaves open."""

import pytest

from repro.errors import StoreError
from repro.kv.hashtable import key_fingerprint
from repro.kv.objects import HEADER_SIZE
from tests.conftest import run1, small_store

SCRUB = {"scrub_interval_ns": 2_000.0}


def _key(i):
    return f"scrub-{i:010d}".encode()


def _head_value_addr(setup, key):
    """Device address of the first value byte of ``key``'s head object."""
    part = setup.server.partitions[0]
    entry_off = part.table.find(key_fingerprint(key))
    assert entry_off is not None
    cur = part.table.read_cur(entry_off)
    assert cur is not None
    return part.pools[cur.pool].abs_addr(cur.offset) + HEADER_SIZE + len(key)


def _settle(env, setup, ns=800_000):
    env.run(until=env.now + ns)


def _wait_for_scrub(env, setup, field, deadline_ns=80_000_000):
    scrubber = setup.server.scrubber
    deadline = env.now + deadline_ns
    while env.now < deadline and scrubber.stats()[field] == 0:
        env.run(until=env.now + 1_000_000)
    return scrubber.stats()


class TestRepair:
    def test_bitrot_on_head_rolls_back_to_previous_version(self, env):
        setup = small_store("efactory", env, **SCRUB)
        c = setup.client()
        v1, v2 = b"A" * 64, b"B" * 64

        run1(env, c.put(_key(0), v1))
        _settle(env, setup)  # v1 durable
        run1(env, c.put(_key(0), v2))
        _settle(env, setup)  # v2 durable — the trusted head

        setup.server.device.corrupt(_head_value_addr(setup, _key(0)), "bitflip")
        stats = _wait_for_scrub(env, setup, "repaired")
        assert stats["corrupt_found"] >= 1
        assert stats["repaired"] >= 1
        assert stats["unrepairable"] == 0

        got = run1(env, c.get(_key(0), size_hint=64))
        assert got == v1  # rolled back — never the torn bytes

    def test_rot_with_no_intact_version_clears_the_key(self, env):
        setup = small_store("efactory", env, **SCRUB)
        c = setup.client()

        run1(env, c.put(_key(1), b"C" * 64))
        _settle(env, setup)

        setup.server.device.corrupt(_head_value_addr(setup, _key(1)), "bitflip")
        stats = _wait_for_scrub(env, setup, "unrepairable")
        assert stats["unrepairable"] >= 1
        # a cleared key is a loud miss, not silently served rot
        with pytest.raises(StoreError):
            run1(env, c.get(_key(1), size_hint=64))

    def test_intact_store_scrubs_clean(self, env):
        setup = small_store("efactory", env, **SCRUB)
        c = setup.client()

        def work():
            for i in range(8):
                yield from c.put(_key(10 + i), bytes([i]) * 64)

        run1(env, work())
        _settle(env, setup)
        _wait_for_scrub(env, setup, "scrubbed")
        stats = setup.server.scrubber.stats()
        assert stats["scrubbed"] >= 1
        assert stats["corrupt_found"] == 0


class TestWiring:
    def test_disabled_by_default(self, env):
        setup = small_store("efactory", env)
        assert setup.server.config.scrub_interval_ns == 0.0
        assert not setup.server.scrubber.active

    def test_metrics_expose_scrub_counters(self, env):
        setup = small_store("efactory", env, **SCRUB)
        metrics = setup.server.metrics()
        assert set(metrics["scrubber"]) == {
            "scrubbed", "corrupt_found", "repaired", "unrepairable",
            "reconstructed", "parity_stale", "replica_fetched",
        }
        assert "verifier" in metrics and "cleaner" in metrics

    def test_partitioned_scrubbers_cover_all_partitions(self, env):
        setup = small_store("efactory", env, num_partitions=4, **SCRUB)
        c = setup.client()

        def work():
            for i in range(16):
                yield from c.put(_key(30 + i), bytes([i]) * 64)

        run1(env, work())
        _settle(env, setup)
        _wait_for_scrub(env, setup, "scrubbed")
        assert setup.server.scrubber.active
        assert len(setup.server.scrubber.scrubbers) == 4
