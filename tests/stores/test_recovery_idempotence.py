"""Recovery is idempotent: re-running it (because the machine crashed
*during* recovery and it started over) must converge to the same NVM
image and treat the already-recovered state as a no-op."""

import hashlib

import numpy as np
import pytest

from repro.core.recovery import recover_bucketized
from repro.errors import PowerFailure
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.sim.rng import RngRegistry
from tests.conftest import run1, small_store


def _key(i):
    return f"idem-{i:011d}".encode()


def _digest(server):
    buf = server.device.buffer
    h = hashlib.sha256()
    h.update(bytes(buf.durable))
    h.update(bytes(buf.visible))
    return h.hexdigest()


def _populate_and_crash(env, setup, n_keys=16, settle_ns=120_000):
    """Two versions per key, a *partial* settle (some objects still
    unverified), then a word-tearing power failure."""
    c = setup.client()

    def work():
        for ver in (1, 2):
            for i in range(n_keys):
                yield from c.put(_key(i), bytes([ver]) * 64)

    run1(env, work())
    env.run(until=env.now + settle_ns)
    setup.server.stop()
    setup.fabric.crash_node(
        setup.server.node, np.random.default_rng(3), 0.5, tear_words=True
    )
    setup.fabric.restart_node(setup.server.node)


def _recover(env, setup):
    return env.run(env.process(recover_bucketized(setup.server)))


@pytest.mark.parametrize("partitions", [1, 4])
def test_second_recovery_run_is_a_noop(env, partitions):
    overrides = {"num_partitions": partitions} if partitions > 1 else {}
    setup = small_store("efactory", env, **overrides)
    _populate_and_crash(env, setup)

    first = _recover(env, setup)
    image = _digest(setup.server)
    second = _recover(env, setup)

    assert _digest(setup.server) == image
    assert second.keys_rolled_back == 0
    assert second.keys_lost == 0
    assert second.torn_objects == 0
    assert first.keys_recovered + first.keys_rolled_back >= second.keys_recovered


def test_crash_mid_recovery_converges(env):
    """Power-fail recovery itself at a fixed step; the re-run must land
    on a stable image that a further run leaves untouched."""
    setup = small_store("efactory", env)
    _populate_and_crash(env, setup)

    rngs = RngRegistry(5)
    rule = FaultRule(
        kind="crash", site="recovery.step", after_op=3, before_op=4, max_fires=1
    )
    injector = FaultInjector(env, FaultPlan("midrec", (rule,)), rngs)

    def hook(site):
        setup.fabric.crash_node(
            setup.server.node, rngs.stream("c2"), 0.5, tear_words=True
        )
        raise PowerFailure(f"double crash at {site}")

    injector.crash_hook = hook
    setup.server.device.injector = injector

    with pytest.raises(PowerFailure):
        _recover(env, setup)

    setup.server.device.injector = None
    setup.fabric.restart_node(setup.server.node)
    _recover(env, setup)
    image = _digest(setup.server)
    report = _recover(env, setup)

    assert _digest(setup.server) == image
    assert report.keys_rolled_back == 0
    assert report.keys_lost == 0
