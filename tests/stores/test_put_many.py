"""The doorbell-batched PUT pipeline: equivalence with sequential PUTs,
amortization counters, error surfacing, and crash-point spot-checks."""

import numpy as np
import pytest

from repro.baselines.base import ObjectLocation
from repro.core.recovery import recover_bucketized
from repro.errors import QPError, StoreError
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Environment
from tests.conftest import run1, small_store


def _key(i: int) -> bytes:
    return f"key-{i:012d}".encode()


def _items(n: int, vlen: int = 64):
    return [(_key(i), bytes([i % 251]) * vlen) for i in range(n)]


BATCHED = dict(put_batch=8, put_window=2, bg_batch=8, loc_cache_size=64)


class TestEquivalence:
    def test_roundtrip_matches_sequential(self, env):
        items = _items(30)
        setup = small_store("efactory", env, **BATCHED)
        c = setup.client()

        def work():
            yield from c.put_many(items)
            yield env.timeout(1_000_000)
            got = []
            for key, value in items:
                got.append((yield from c.get(key, size_hint=64)) == value)
            return got

        assert all(run1(env, work()))

    def test_same_final_state_as_sequential(self):
        """Batched and sequential ingestion leave the same KV contents."""

        def final_values(batched: bool):
            env = Environment()
            overrides = dict(BATCHED) if batched else {}
            setup = small_store("efactory", env, **overrides)
            c = setup.client()
            items = _items(20)

            def work():
                if batched:
                    yield from c.put_many(items)
                else:
                    for key, value in items:
                        yield from c.put(key, value)
                yield env.timeout(1_000_000)
                out = []
                for key, _ in items:
                    out.append((yield from c.get(key, size_hint=64)))
                return out

            return run1(env, work())

        assert final_values(True) == final_values(False)

    def test_default_put_many_is_sequential_puts(self, env):
        """Stores without the pipeline fall back to per-item put()."""
        setup = small_store("rpc", env)
        c = setup.client()
        items = _items(6)

        def work():
            yield from c.put_many(items)
            out = []
            for key, value in items:
                out.append((yield from c.get(key, size_hint=64)) == value)
            return out

        assert all(run1(env, work()))


class TestAmortization:
    def test_counters(self, env):
        setup = small_store("efactory", env, **BATCHED)
        c = setup.client()
        items = _items(24)  # 3 chunks of 8

        run1(env, c.put_many(items))
        assert c.ep.stats["doorbell_batches"] == 3
        assert setup.server.rpc.served_by_op["alloc_batch"] == 3
        assert "alloc" not in setup.server.rpc.served_by_op

    def test_pipeline_is_faster_than_sequential(self):
        def elapsed(batched: bool) -> float:
            env = Environment()
            setup = small_store("efactory", env, **BATCHED)
            c = setup.client()
            items = _items(32)
            t0 = env.now

            def work():
                if batched:
                    yield from c.put_many(items)
                else:
                    for key, value in items:
                        yield from c.put(key, value)

            run1(env, work())
            return env.now - t0

        assert elapsed(True) < elapsed(False) / 2  # the >=2x claim

    def test_single_chunk_one_rpc(self, env):
        setup = small_store("efactory", env, **BATCHED)
        c = setup.client()
        run1(env, c.put_many(_items(8)))
        assert setup.server.rpc.served_by_op["alloc_batch"] == 1
        assert setup.server.rpc.requests_served == 1


class TestErrors:
    def test_per_item_alloc_error_raises(self, env):
        """A pool too small for the batch surfaces as an RpcFault, not a
        silent partial write."""
        setup = small_store("efactory", env, **dict(BATCHED, pool_size=4096))
        c = setup.client()
        items = _items(64, vlen=512)

        def work():
            try:
                yield from c.put_many(items)
            except (RpcFault, StoreError):
                return "raised"
            return "ok"

        assert run1(env, work()) == "raised"


class TestCrashSpotCheck:
    """Crash the server at several points inside a put_many and verify
    the recovered media never lies: every object whose durable flag
    survived must pass CRC (the doorbell batch must not let a torn
    value masquerade as durable)."""

    @pytest.mark.parametrize("crash_after_ns", [3_000, 6_000, 12_000, 25_000])
    def test_durable_flags_honest_after_crash(self, crash_after_ns):
        env = Environment()
        setup = small_store("efactory", env, **BATCHED)
        c = setup.client()
        items = _items(16)

        def driver():
            try:
                yield from c.put_many(items)
            except (QPError, RpcFault, StoreError):
                pass

        proc = env.process(driver())
        env.run(until=env.now + crash_after_ns)
        setup.server.stop()
        setup.fabric.crash_node(
            setup.server.node, np.random.default_rng(7), evict_probability=0.5
        )
        setup.fabric.restart_node(setup.server.node)
        # Drain the aftermath: the client proc may stay blocked forever
        # on a response the dead server will never send — that's fine,
        # we only need in-flight WRITE failures to resolve.
        env.run(until=env.now + 500_000)

        env.run(env.process(recover_bucketized(setup.server)))
        for part in setup.server.partitions:
            for pool in part.pools:
                for alloc in pool.allocations:
                    loc = ObjectLocation(
                        pool=pool.pool_id, offset=alloc.offset, size=alloc.size
                    )
                    img = part.read_object(loc)
                    if img.well_formed and img.valid and img.durable:
                        assert part.object_value_ok(img), (
                            f"torn-but-durable object at {crash_after_ns}ns "
                            f"(pool {pool.pool_id} off {alloc.offset})"
                        )
