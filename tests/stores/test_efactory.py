"""eFactory-specific machinery: hybrid reads, the background verifier,
timeout invalidation, the version list, delete."""

import pytest

from repro.baselines.base import ObjectLocation
from repro.errors import KeyNotFoundError, StoreError
from repro.kv.objects import FLAG_VALID, HEADER_SIZE
from repro.rdma.rpc import RpcFault
from repro.sim.kernel import Environment
from tests.conftest import run1, small_store

KEY = b"key-000000000efa"


class TestHybridRead:
    def test_durable_object_served_by_pure_rdma(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"v" * 64)
            yield env.timeout(200_000)  # background thread persists
            yield from c.get(KEY, size_hint=64)

        run1(env, work())
        assert c.pure_reads == 1 and c.fallback_reads == 0

    def test_read_write_race_falls_back_to_rpc(self, env):
        """A GET issued right after PUT sees no durability flag and must
        re-read through the RPC path (Figure 6 steps 5-9). The background
        thread's retry is pushed out so it cannot win the race."""
        setup = small_store("efactory", env, bg_retry_delay_ns=1e6)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"w" * 4096)
            return (yield from c.get(KEY, size_hint=4096))  # immediately

        assert run1(env, work()) == b"w" * 4096
        assert c.fallback_reads == 1

    def test_fallback_read_is_slower(self, env):
        setup = small_store("efactory", env, bg_retry_delay_ns=1e6)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"z" * 4096)
            t0 = env.now
            yield from c.get(KEY, size_hint=4096)  # fallback
            t_fallback = env.now - t0
            yield env.timeout(2_000_000)
            t0 = env.now
            yield from c.get(KEY, size_hint=4096)  # pure
            t_pure = env.now - t0
            return t_fallback, t_pure

        t_fallback, t_pure = run1(env, work())
        assert t_fallback > t_pure

    def test_nohr_always_uses_rpc(self, env):
        setup = small_store("efactory_nohr", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"n" * 64)
            yield env.timeout(200_000)
            yield from c.get(KEY, size_hint=64)
            yield from c.get(KEY, size_hint=64)

        run1(env, work())
        # With hybrid read disabled the pure path is never attempted:
        # these are rpc-only reads, not fallbacks.
        assert c.pure_reads == 0 and c.fallback_reads == 0
        assert c.rpc_only_reads == 2

    def test_rpc_fallback_serves_durable_version_during_race(self, env):
        """While the newest version is in flight, the server must serve
        the previous intact version, never the torn head."""
        setup = small_store("efactory", env)
        a, = setup.clients
        b_setup = setup  # second client on the same server
        b = type(a)(env, setup.server, name="reader")
        results = {}

        def writer():
            yield from a.put(KEY, b"OLD!" * 16)
            yield env.timeout(200_000)  # OLD becomes durable
            yield from a.put(KEY, b"NEW!" * 1024)  # 4 KiB, slow write

        def reader():
            # land mid-second-write: after its alloc, before data arrives
            yield env.timeout(200_000 + 5_500)
            value = yield from b.get(KEY, size_hint=4096)
            results["value"] = value

        w = env.process(writer())
        r = env.process(reader())
        env.run(env.all_of([w, r]))
        v = results["value"]
        assert v == b"OLD!" * 16 or v == b"NEW!" * 1024  # never torn


class TestBackgroundVerifier:
    def test_stats_progress(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            for i in range(5):
                yield from c.put(f"key-{i:012d}".encode(), b"x" * 64)

        run1(env, work())
        env.run(until=env.now + 500_000)
        stats = setup.server.background.stats()
        assert stats["persisted"] == 5
        assert stats["backlog"] == 0

    def test_request_handler_sets_flag_and_bg_skips(self, env):
        """A racing GET persists the object itself; the background
        thread later skips it via the durability flag (§4.3.2)."""
        setup = small_store(
            "efactory", env, bg_idle_poll_ns=1e6, bg_retry_delay_ns=1e6
        )
        c = setup.client()

        def work():
            yield from c.put(KEY, b"r" * 64)
            yield from c.get(KEY, size_hint=64)  # fallback persists it

        run1(env, work())
        env.run(until=env.now + 3_000_000)
        stats = setup.server.background.stats()
        assert stats["skipped"] >= 1

    def test_timeout_invalidates_never_completed_write(self, env):
        """An allocation whose one-sided WRITE never arrives is marked
        invalid after the timeout (§4.3.2)."""
        setup = small_store("efactory", env, verify_timeout_ns=30_000.0)
        server = setup.server
        c = setup.client()

        def work():
            # allocate but never write the value (simulates client death)
            resp = yield from c.alloc_rpc(KEY, 64, 0xBAD)
            return resp

        resp = run1(env, work())
        env.run(until=env.now + 400_000)
        loc = ObjectLocation(
            pool=resp["pool"], offset=resp["obj_off"], size=resp["size"]
        )
        img = server.read_object(loc)
        assert not img.valid
        assert server.background.stats()["invalidated"] == 1

    def test_inflight_write_retried_not_invalidated(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"ok" * 32)

        run1(env, work())
        env.run(until=env.now + 500_000)
        stats = setup.server.background.stats()
        assert stats["invalidated"] == 0
        assert stats["persisted"] == 1


class TestVersionList:
    def test_chain_links_all_versions(self, env):
        setup = small_store("efactory", env)
        c = setup.client()
        server = setup.server

        def work():
            for i in range(4):
                yield from c.put(KEY, f"ver{i}".encode() + b"." * 60)

        run1(env, work())
        # walk the chain from the entry
        found = server.lookup_slot(KEY)
        loc = ObjectLocation(
            pool=found[1].pool, offset=found[1].offset, size=found[1].size
        )
        seen = []
        while loc is not None:
            img = server.read_object(loc)
            seen.append(img.value[:4])
            loc = server._previous_location(loc)
        assert seen == [b"ver3", b"ver2", b"ver1", b"ver0"]


class TestDelete:
    def test_delete_removes_key(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"d" * 64)
            yield from c.delete(KEY)
            yield from c.get(KEY, size_hint=64)

        with pytest.raises(StoreError):
            run1(env, work())

    def test_delete_missing_key_faults(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.delete(b"key-000000nothere")

        with pytest.raises(RpcFault):
            run1(env, work())

    def test_reput_after_delete(self, env):
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"one" * 21 + b"x")
            yield from c.delete(KEY)
            yield from c.put(KEY, b"two" * 21 + b"y")
            return (yield from c.get(KEY, size_hint=64))

        assert run1(env, work())[:3] == b"two"
