"""Per-scheme semantic differences: durability points, verification
placement, metadata publish ordering."""

import pytest

from repro.baselines.base import ObjectLocation
from repro.errors import CorruptObjectError, KeyNotFoundError
from repro.kv.hashtable import key_fingerprint
from repro.sim.kernel import Environment
from tests.conftest import run1, small_store

KEY = b"key-00000000sema"


def _object_loc(server, key):
    from repro.kv.hopscotch import HopscotchTable
    from repro.kv.objects import HEADER_SIZE, object_size, parse_header

    if isinstance(server.table, HopscotchTable):
        found = server.table.lookup(key_fingerprint(key))
        assert found is not None and found[1].off1 is not None
        off = found[1].off1
        hdr = parse_header(server.pools[0].read(off, HEADER_SIZE))
        return ObjectLocation(
            pool=0, offset=off, size=object_size(hdr.klen, hdr.vlen)
        )
    found = server.lookup_slot(key)
    assert found is not None
    _, cur, _ = found
    return ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)


def _is_durable(server, key):
    loc = _object_loc(server, key)
    pool = server.pools[loc.pool]
    return server.device.is_persistent(pool.abs_addr(loc.offset), loc.size)


class TestDurabilityPoint:
    @pytest.mark.parametrize("store", ["rpc", "saw", "imm"])
    def test_durable_when_put_returns(self, env, store):
        setup = small_store(store, env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"must-persist" * 4)

        run1(env, work())
        assert _is_durable(setup.server, KEY)

    @pytest.mark.parametrize("store", ["ca", "erda", "forca"])
    def test_not_durable_when_put_returns(self, env, store):
        setup = small_store(store, env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"still-volatile" * 4)

        run1(env, work())
        assert not _is_durable(setup.server, KEY)

    def test_efactory_durable_asynchronously(self, env):
        """eFactory's PUT returns before durability; the background
        thread persists shortly after (§4.3.2)."""
        setup = small_store("efactory", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"async-durable!" * 4)

        run1(env, work())
        assert not _is_durable(setup.server, KEY)  # ack preceded durability
        env.run(until=env.now + 200_000)  # let the background thread run
        assert _is_durable(setup.server, KEY)
        img = setup.server.read_object(_object_loc(setup.server, KEY))
        assert img.durable  # flag set too


class TestMetadataPublishOrder:
    @pytest.mark.parametrize("store", ["saw", "imm"])
    def test_not_indexed_until_durable(self, env, store):
        """SAW/IMM update metadata only after the data is durable, so a
        reader never needs verification (§5.3.1/5.3.2)."""
        setup = small_store(store, env)
        c = setup.client()
        probe = {}

        def writer():
            yield from c.put(KEY, b"v" * 64)

        def prober():
            # between alloc and the durability point: ~6 us in
            yield env.timeout(6_000)
            found = setup.server.lookup_slot(KEY)
            # the fp may be claimed, but no version may be published
            probe["indexed_midway"] = found is not None and found[1] is not None

        env.process(prober())
        run1(env, writer())
        assert probe["indexed_midway"] is False
        found = setup.server.lookup_slot(KEY)
        assert found is not None and found[1] is not None

    @pytest.mark.parametrize("store", ["efactory", "ca", "forca"])
    def test_indexed_at_alloc(self, env, store):
        """Client-active schemes expose the entry before data arrives —
        that is exactly why they need verification machinery."""
        setup = small_store(store, env)
        c = setup.client()
        probe = {}

        def writer():
            yield from c.put(KEY, b"v" * 4096)

        def prober():
            yield env.timeout(5_500)  # after alloc RPC, before WRITE acks
            found = setup.server.lookup_slot(KEY)
            probe["indexed_midway"] = found is not None

        env.process(prober())
        run1(env, writer())
        assert probe["indexed_midway"] is True


class TestVerificationPlacement:
    def test_erda_detects_torn_value_and_rolls_back(self, env):
        """Corrupt the latest version in place: Erda's client CRC must
        reject it and serve the previous version."""
        setup = small_store("erda", env)
        c = setup.client()
        server = setup.server

        def work():
            yield from c.put(KEY, b"A" * 64)
            yield from c.put(KEY, b"B" * 64)
            # tear the latest version's value behind the index's back
            found = server.table.lookup(key_fingerprint(KEY))
            off1 = found[1].off1
            from repro.kv.objects import HEADER_SIZE

            server.pools[0].write(off1 + HEADER_SIZE + len(KEY), b"X" * 10)
            return (yield from c.get(KEY, size_hint=64))

        assert run1(env, work()) == b"A" * 64  # rolled back to previous

    def test_erda_both_versions_torn_is_unrecoverable(self, env):
        setup = small_store("erda", env)
        c = setup.client()
        server = setup.server

        def work():
            from repro.kv.objects import HEADER_SIZE

            yield from c.put(KEY, b"A" * 64)
            yield from c.put(KEY, b"B" * 64)
            found = server.table.lookup(key_fingerprint(KEY))
            for off in (found[1].off1, found[1].off2):
                server.pools[0].write(off + HEADER_SIZE + len(KEY), b"X" * 8)
            yield from c.get(KEY, size_hint=64)

        with pytest.raises(CorruptObjectError):
            run1(env, work())

    def test_erda_requires_size_hint(self, env):
        setup = small_store("erda", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"A" * 64)
            yield from c.get(KEY)

        from repro.errors import StoreError

        with pytest.raises(StoreError, match="size hint"):
            run1(env, work())

    def test_forca_persists_on_read_path(self, env):
        """Forca flushes the object while serving the GET (§5.3.4)."""
        setup = small_store("forca", env)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"F" * 64)
            assert not _is_durable(setup.server, KEY)
            yield from c.get(KEY, size_hint=64)

        run1(env, work())
        assert _is_durable(setup.server, KEY)

    def test_forca_rolls_back_past_torn_head(self, env):
        setup = small_store("forca", env)
        c = setup.client()
        server = setup.server

        def work():
            from repro.kv.objects import HEADER_SIZE

            yield from c.put(KEY, b"A" * 64)
            yield from c.put(KEY, b"B" * 64)
            loc = _object_loc(server, KEY)
            server.pools[0].write(
                loc.offset + HEADER_SIZE + len(KEY), b"X" * 8
            )
            return (yield from c.get(KEY, size_hint=64))

        assert run1(env, work()) == b"A" * 64

    def test_ca_returns_torn_data_blindly(self, env):
        """The unsafe baseline: no verification anywhere."""
        setup = small_store("ca", env)
        c = setup.client()
        server = setup.server

        def work():
            from repro.kv.objects import HEADER_SIZE

            yield from c.put(KEY, b"GOOD" * 16)
            loc = _object_loc(server, KEY)
            server.pools[0].write(loc.offset + HEADER_SIZE + len(KEY), b"EVIL")
            return (yield from c.get(KEY, size_hint=64))

        value = run1(env, work())
        assert value.startswith(b"EVIL")  # served without complaint
