"""Full lifecycle: serve → power failure → recover → restart → serve.

The crash harness audits durable state directly; this test exercises
the *protocol* end of restart — the server's dispatch loop and
background thread come back up and a freshly connected client reads the
recovered data through the normal paths.
"""

import numpy as np
import pytest

from repro.core.recovery import recover_bucketized
from repro.sim.kernel import Environment
from repro.workloads.keyspace import make_value, parse_value
from tests.conftest import run1, small_store

N_KEYS = 16


def _key(i):
    return f"key-{i:012d}".encode()


def test_crash_recover_restart_serve(env):
    setup = small_store("efactory", env, n_clients=1)
    server = setup.server
    c = setup.client()

    def load():
        for i in range(N_KEYS):
            yield from c.put(_key(i), make_value(i, 1, 128))

    run1(env, load())
    env.run(until=env.now + 1_000_000)  # all durable

    # power failure
    server.stop()
    setup.fabric.crash_node(server.node, np.random.default_rng(2), 0.3)

    # recovery on the rebooted machine
    setup.fabric.restart_node(server.node)
    report = env.run(env.process(recover_bucketized(server)))
    assert report.keys_lost == 0

    # bring the services back up and serve a brand-new client
    server.start()
    new_client = type(c)(env, server, name="post-crash-client")

    def read_all():
        out = []
        for i in range(N_KEYS):
            value = yield from new_client.get(_key(i), size_hint=128)
            out.append(parse_value(value))
        return out

    values = run1(env, read_all())
    assert values == [(i, 1) for i in range(N_KEYS)]
    # recovered objects are durable: reads go pure RDMA
    assert new_client.pure_reads == N_KEYS

    # and the store accepts new writes after restart
    def write_more():
        yield from new_client.put(_key(0), make_value(0, 2, 128))
        return (yield from new_client.get(_key(0), size_hint=128))

    assert parse_value(run1(env, write_more())) == (0, 2)


def test_double_stop_is_safe(env):
    setup = small_store("efactory", env)
    setup.server.stop()
    setup.server.stop()  # idempotent


def test_background_thread_restarts(env):
    setup = small_store("efactory", env)
    server = setup.server
    server.stop()
    setup.fabric.crash_node(server.node, np.random.default_rng(0), 0.5)
    setup.fabric.restart_node(server.node)
    env.run(env.process(recover_bucketized(server)))
    server.start()
    c = type(setup.client())(env, server, name="late")

    def work():
        yield from c.put(_key(3), make_value(3, 7, 128))

    run1(env, work())
    env.run(until=env.now + 1_000_000)
    # the (new) background thread verified and persisted the write
    assert server.background.stats()["persisted"] >= 1
