"""The coalesced background verifier (bg_batch > 1): same persisted
outcome as the seed's poll loop, with batch/flush/wakeup accounting."""

from repro.sim.kernel import Environment
from tests.conftest import run1, small_store


def _key(i: int) -> bytes:
    return f"key-{i:012d}".encode()


def _run_ingest(bg_batch: int, n: int = 24):
    env = Environment()
    setup = small_store("efactory", env, bg_batch=bg_batch)
    c = setup.client()
    items = [(_key(i), bytes([i]) * 64) for i in range(n)]

    def work():
        for key, value in items:
            yield from c.put(key, value)

    run1(env, work())
    env.run(until=env.now + 3_000_000)
    return env, setup, c, items


class TestEquivalence:
    def test_same_persisted_set_as_unbatched(self):
        """Every object the poll loop persists, the batched loop
        persists too — durability must not depend on the ablation."""
        results = {}
        for bg_batch in (1, 8):
            env, setup, c, items = _run_ingest(bg_batch)
            stats = setup.server.background.stats()
            assert stats["persisted"] == len(items)
            assert stats["backlog"] == 0

            def check():
                out = []
                for key, value in items:
                    out.append((yield from c.get(key, size_hint=64)) == value)
                return out

            assert all(run1(env, check()))
            # All post-settle reads were pure one-sided reads: the
            # durability flags really are set on media.
            results[bg_batch] = c.read_stats()["pure"]
        assert results[1] == results[8] == 24

    def test_timeout_invalidation_still_works(self):
        """An allocation whose WRITE never arrives is still invalidated
        by the batched loop (retry bookkeeping is shared)."""
        env = Environment()
        setup = small_store(
            "efactory", env, bg_batch=8, verify_timeout_ns=30_000.0
        )
        c = setup.client()

        def work():
            # Allocate but never write the value (client death).
            return (yield from c.alloc_rpc(_key(0), 64, 0xBAD))

        run1(env, work())
        env.run(until=env.now + 400_000)
        assert setup.server.background.stats()["invalidated"] == 1


class TestAccounting:
    def test_batch_counters_present_and_used(self):
        """A put_many burst lands adjacent allocations close together:
        the batched verifier must gather them into multi-object passes
        with coalesced flush runs."""
        env = Environment()
        setup = small_store(
            "efactory", env, bg_batch=8, put_batch=8, put_window=2
        )
        c = setup.client()
        items = [(_key(i), bytes([i]) * 64) for i in range(24)]
        run1(env, c.put_many(items))
        env.run(until=env.now + 3_000_000)
        stats = setup.server.background.stats()
        assert stats["persisted"] == len(items)
        assert stats["batches"] >= 1
        assert stats["wakeups"] >= 1
        assert stats["coalesced_flushes"] >= 1
        # Batching amortizes: far fewer passes than objects.
        assert stats["batches"] < len(items)

    def test_unbatched_reports_zero_batches(self):
        env, setup, _c, _items = _run_ingest(bg_batch=1)
        stats = setup.server.background.stats()
        assert stats["batches"] == 0
        assert stats["coalesced_flushes"] == 0
        assert stats["wakeups"] == 0

    def test_counters_surface_in_server_metrics(self):
        env, setup, _c, _items = _run_ingest(bg_batch=8)
        verifier = setup.server.metrics()["verifier"]
        for key in ("batches", "coalesced_flushes", "wakeups"):
            assert key in verifier
