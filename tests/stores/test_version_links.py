"""Version-list link maintenance (§4.2.2): PrePTR backward, NextPTR
forward, and the cleaner's treatment of invalidated objects."""

import pytest

from repro.baselines.base import ObjectLocation
from repro.kv.objects import FLAG_VALID, HEADER_SIZE, parse_header, unpack_ptr
from repro.sim.kernel import Environment
from tests.conftest import run1, small_store

KEY = b"key-00000000link"


def _chain_offsets(server, key):
    """Offsets of all versions newest-first via PrePTR."""
    found = server.lookup_slot(key)
    cur = found[1]
    out = []
    loc = ObjectLocation(pool=cur.pool, offset=cur.offset, size=cur.size)
    while loc is not None:
        out.append((loc.pool, loc.offset))
        loc = server._previous_location(loc)
    return out


def test_forward_links_mirror_backward_links(env):
    setup = small_store("efactory", env)
    c = setup.client()

    def work():
        for i in range(4):
            yield from c.put(KEY, bytes([i]) * 64)

    run1(env, work())
    server = setup.server
    chain = _chain_offsets(server, KEY)
    assert len(chain) == 4
    # walk forward from the oldest using nxt_ptr; must retrace the chain
    oldest = chain[-1]
    forward = [oldest]
    while True:
        pool, off = forward[-1]
        hdr = parse_header(server.pools[pool].read(off, HEADER_SIZE))
        nxt = unpack_ptr(hdr.nxt_ptr)
        if nxt is None:
            break
        forward.append(nxt)
    assert forward == list(reversed(chain))


def test_latest_version_has_no_forward_link(env):
    setup = small_store("efactory", env)
    c = setup.client()

    def work():
        yield from c.put(KEY, b"only" * 16)

    run1(env, work())
    server = setup.server
    (pool, off), = _chain_offsets(server, KEY)
    hdr = parse_header(server.pools[pool].read(off, HEADER_SIZE))
    assert unpack_ptr(hdr.nxt_ptr) is None


def test_cleaner_skips_invalidated_objects(env):
    """An object invalidated by the verify timeout is garbage: the
    cleaner must not move it, and the key resolves to the older intact
    version afterwards."""
    setup = small_store("efactory", env, verify_timeout_ns=20_000.0)
    server = setup.server
    c = setup.client()

    def work():
        yield from c.put(KEY, b"good" * 16)
        # allocate a newer version whose value never arrives
        yield from c.alloc_rpc(KEY, 64, 0xBAD)

    run1(env, work())
    env.run(until=env.now + 500_000)  # timeout fires; good version durable
    assert server.background.stats()["invalidated"] == 1

    env.run(server.trigger_cleaning())
    assert server.cleaner.stats.moved == 1  # only the intact version

    def check():
        return (yield from c.get(KEY, size_hint=64))

    assert run1(env, check()) == b"good" * 16
