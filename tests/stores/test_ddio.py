"""DDIO configuration (§2.2/§7 context): with DDIO disabled, inbound
RDMA writes land directly in the power-fail domain."""

import numpy as np
import pytest

from repro.nvm.device import NVMDevice
from repro.rdma.fabric import Fabric
from repro.sim.kernel import Environment
from tests.conftest import run1, small_store

KEY = b"key-00000000ddio"


class TestFabricLevel:
    def _net(self, env, ddio):
        fabric = Fabric(env, jitter_ns=0.0)
        server = fabric.create_node(
            "s", device=NVMDevice(env, 1 << 20), ddio=ddio
        )
        client = fabric.create_node("c")
        ep = fabric.connect(client, server)
        mr = server.register_memory(0, 1 << 20)
        return fabric, server, ep, mr

    def test_ddio_on_write_is_volatile(self, env):
        _f, server, ep, mr = self._net(env, ddio=True)

        def w():
            yield from ep.write(mr.rkey, 0, b"x" * 256)

        run1(env, w())
        assert not server.device.is_persistent(0, 256)

    def test_ddio_off_write_is_durable_on_arrival(self, env):
        _f, server, ep, mr = self._net(env, ddio=False)

        def w():
            yield from ep.write(mr.rkey, 0, b"x" * 256)

        run1(env, w())
        assert server.device.is_persistent(0, 256)

    def test_ddio_off_torn_writes_survive_crash(self, env):
        """Without DDIO a torn in-flight write is torn *on media*: the
        arrived cachelines persist regardless of eviction luck — the
        paper's worst-case inconsistency."""
        fabric, server, ep, mr = self._net(env, ddio=False)

        def w():
            try:
                yield from ep.write(mr.rkey, 0, b"\xab" * 4096)
            except Exception:
                pass

        def killer():
            yield env.timeout(700)
            fabric.crash_node(server, np.random.default_rng(3), 0.0)

        env.process(w())
        env.process(killer())
        env.run()
        landed = sum(
            1 for i in range(64) if server.device.read(i * 64, 1) == b"\xab"
        )
        assert 0 < landed < 64  # durable tear even with zero eviction


class TestStoreLevel:
    def test_config_plumbs_to_node(self, env):
        setup = small_store("ca", env, ddio=False)
        assert setup.server.node.ddio is False

    def test_ca_without_ddio_is_durable_per_write(self, env):
        """CA + no DDIO: each completed write is durable on ack (but
        atomicity is still absent — this is not a consistency scheme)."""
        setup = small_store("ca", env, ddio=False)
        c = setup.client()

        def work():
            yield from c.put(KEY, b"v" * 256)

        run1(env, work())
        found = setup.server.lookup_slot(KEY)
        cur = found[1]
        pool = setup.server.pools[cur.pool]
        # the *value* region arrived via DMA and is durable
        from repro.kv.objects import HEADER_SIZE

        value_addr = pool.abs_addr(cur.offset) + HEADER_SIZE + len(KEY)
        assert setup.server.device.is_persistent(value_addr, 256)
