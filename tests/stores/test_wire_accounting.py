"""Wire-level accounting: each scheme issues exactly the verbs its
paper description says it does (Figure 8's access paradigms).

The endpoint counts every verb, so a protocol regression (an extra
round trip sneaking into a path) fails here even if latencies stay
plausible.
"""

import pytest

from repro.sim.kernel import Environment
from tests.conftest import run1, small_store

KEY = b"key-00000000wire"


def _ops_delta(client, fn):
    """Verb counts issued by `fn` on the client's endpoint."""
    before = dict(client.ep.stats)
    run1(client.env, fn())
    after = client.ep.stats
    return {
        k: after.get(k, 0) - before.get(k, 0)
        for k in sorted(set(after) | set(before))
        if after.get(k, 0) != before.get(k, 0)
    }


class TestPutWire:
    def test_ca_put_is_send_plus_write(self, env):
        setup = small_store("ca", env)
        c = setup.client()
        delta = _ops_delta(c, lambda: c.put(KEY, b"v" * 64))
        assert delta == {"send": 1, "write": 1}

    def test_saw_put_adds_the_persist_send(self, env):
        setup = small_store("saw", env)
        c = setup.client()
        delta = _ops_delta(c, lambda: c.put(KEY, b"v" * 64))
        assert delta == {"send": 2, "write": 1}

    def test_imm_put_uses_write_with_imm(self, env):
        setup = small_store("imm", env)
        c = setup.client()
        delta = _ops_delta(c, lambda: c.put(KEY, b"v" * 64))
        assert delta == {"send": 1, "write_with_imm": 1}

    def test_rpc_put_is_one_send(self, env):
        setup = small_store("rpc", env)
        c = setup.client()
        delta = _ops_delta(c, lambda: c.put(KEY, b"v" * 64))
        assert delta == {"send": 1}

    @pytest.mark.parametrize("store", ["efactory", "erda", "forca"])
    def test_client_active_put_is_send_plus_write(self, env, store):
        setup = small_store(store, env)
        c = setup.client()
        delta = _ops_delta(c, lambda: c.put(KEY, b"v" * 64))
        assert delta == {"send": 1, "write": 1}


class TestGetWire:
    def _settled(self, env, store):
        setup = small_store(store, env)
        c = setup.client()
        run1(env, c.put(KEY, b"v" * 64))
        env.run(until=env.now + 1_000_000)  # durable where applicable
        return c

    @pytest.mark.parametrize("store", ["ca", "saw", "imm"])
    def test_two_reads(self, env, store):
        c = self._settled(env, store)
        delta = _ops_delta(c, lambda: c.get(KEY, size_hint=64))
        assert delta == {"read": 2}

    def test_efactory_pure_get_is_two_reads(self, env):
        c = self._settled(env, "efactory")
        delta = _ops_delta(c, lambda: c.get(KEY, size_hint=64))
        assert delta == {"read": 2}

    def test_efactory_fallback_get_adds_rpc_and_reread(self, env):
        """During a read-write race: bucket READ + object READ (flag not
        set) + SEND (RPC) + final READ — Figure 6's full 9-step path."""
        setup = small_store("efactory", env, bg_retry_delay_ns=1e7)
        c = setup.client()
        run1(env, c.put(KEY, b"v" * 4096))  # not yet durable
        delta = _ops_delta(c, lambda: c.get(KEY, size_hint=4096))
        assert delta == {"read": 3, "send": 1}

    def test_erda_clean_get_is_two_reads(self, env):
        c = self._settled(env, "erda")
        delta = _ops_delta(c, lambda: c.get(KEY, size_hint=64))
        assert delta == {"read": 2}

    def test_erda_torn_head_costs_a_third_read(self, env):
        setup = small_store("erda", env)
        c = setup.client()

        def two_puts():
            yield from c.put(KEY, b"A" * 64)
            yield from c.put(KEY, b"B" * 64)

        run1(env, two_puts())
        from repro.kv.hashtable import key_fingerprint
        from repro.kv.objects import HEADER_SIZE

        found = setup.server.table.lookup(key_fingerprint(KEY))
        setup.server.pools[0].write(
            found[1].off1 + HEADER_SIZE + len(KEY), b"XX"
        )
        delta = _ops_delta(c, lambda: c.get(KEY, size_hint=64))
        assert delta == {"read": 3}  # neighborhood + torn head + previous

    def test_forca_get_is_rpc_plus_read(self, env):
        c = self._settled(env, "forca")
        delta = _ops_delta(c, lambda: c.get(KEY, size_hint=64))
        assert delta == {"send": 1, "read": 1}

    def test_rpc_get_is_one_send(self, env):
        c = self._settled(env, "rpc")
        delta = _ops_delta(c, lambda: c.get(KEY, size_hint=64))
        assert delta == {"send": 1}
