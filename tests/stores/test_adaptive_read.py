"""Adaptive hybrid read extension (DESIGN.md §5): after a fallback, the
client temporarily routes that key straight to the RPC path."""

import pytest

from repro.sim.kernel import Environment
from tests.conftest import run1, small_store

KEY = b"key-0000adaptive"


def test_skip_window_after_fallback(env):
    setup = small_store(
        "efactory",
        env,
        adaptive_read=True,
        adaptive_ttl_ns=1e6,
        bg_retry_delay_ns=1e7,  # keep the object unverified
        bg_idle_poll_ns=1e7,
    )
    c = setup.client()
    reads = {}

    def work():
        yield from c.put(KEY, b"a" * 4096)
        yield from c.get(KEY, size_hint=4096)  # pure attempt + fallback
        t0 = env.now
        yield from c.get(KEY, size_hint=4096)  # inside skip window: RPC only
        reads["second_lat"] = env.now - t0

    run1(env, work())
    assert c.fallback_reads == 2 and c.pure_reads == 0
    # the second read skipped the wasted 4 KiB optimistic fetch: it must
    # be meaningfully faster than a pure-attempt + fallback combo
    assert reads["second_lat"] < 14_000


def test_skip_window_expires(env):
    setup = small_store(
        "efactory",
        env,
        adaptive_read=True,
        adaptive_ttl_ns=10_000.0,
        bg_retry_delay_ns=50_000.0,  # object verified well after the race
    )
    c = setup.client()

    def work():
        yield from c.put(KEY, b"b" * 4096)
        yield from c.get(KEY, size_hint=4096)  # fallback; arms skip window
        yield env.timeout(500_000)  # window expired; object now durable
        yield from c.get(KEY, size_hint=4096)

    run1(env, work())
    assert c.fallback_reads == 1
    assert c.pure_reads == 1  # the post-expiry read went pure again


def test_pure_success_clears_skip_state(env):
    setup = small_store("efactory", env, adaptive_read=True)
    c = setup.client()

    def work():
        yield from c.put(KEY, b"c" * 64)
        yield env.timeout(500_000)
        yield from c.get(KEY, size_hint=64)
        yield from c.get(KEY, size_hint=64)

    run1(env, work())
    assert c.pure_reads == 2
    assert not c._skip_until


def test_disabled_by_default(env):
    setup = small_store("efactory", env)
    assert setup.server.config.adaptive_read is False
