"""Client-side location cache: one-READ GETs with the object image as
the staleness detector, and per-partition flushes on cleaning and
degradation."""

import random

from repro.faults.policy import RetryPolicy
from repro.sim.kernel import Environment
from tests.conftest import run1, small_store


def _key(i: int) -> bytes:
    return f"key-{i:012d}".encode()


def _cached_store(env: Environment, **overrides):
    defaults = dict(loc_cache_size=128)
    defaults.update(overrides)
    return small_store("efactory", env, **defaults)


class TestCachedReads:
    def test_warm_get_hits_and_matches(self, env):
        setup = _cached_store(env)
        c = setup.client()

        def work():
            yield from c.put(_key(1), b"a" * 64)
            yield env.timeout(200_000)  # verifier persists
            return (yield from c.get(_key(1), size_hint=64))

        assert run1(env, work()) == b"a" * 64
        # PUT warmed the cache via _note_alloc: the GET was a hit.
        assert c.cache_hits == 1 and c.cache_misses == 0

    def test_cached_get_is_faster_than_uncached(self, env):
        setup = _cached_store(env)
        c = setup.client()

        def work():
            yield from c.put(_key(2), b"b" * 64)
            yield env.timeout(200_000)
            t0 = env.now
            yield from c.get(_key(2), size_hint=64)  # hit: one READ
            t_hit = env.now - t0
            c._loc_cache.clear()
            t0 = env.now
            yield from c.get(_key(2), size_hint=64)  # miss: two READs
            t_miss = env.now - t0
            return t_hit, t_miss

        t_hit, t_miss = run1(env, work())
        assert t_hit < t_miss

    def test_disabled_by_default(self, env):
        setup = small_store("efactory", env)  # loc_cache_size = 0
        c = setup.client()

        def work():
            yield from c.put(_key(3), b"c" * 64)
            yield env.timeout(200_000)
            yield from c.get(_key(3), size_hint=64)

        run1(env, work())
        assert c.cache_hits == 0
        assert len(c._loc_cache) == 0


class TestStaleness:
    def test_overwrite_invalidates_cached_slot(self, env):
        """After an overwrite the cached (old) slot's image carries a
        set nxt_ptr: the client must detect it, drop the entry, and
        return the new value."""
        setup = small_store("efactory", env, n_clients=2, loc_cache_size=128)
        c = setup.client(0)
        c2 = setup.client(1)

        def work():
            yield from c.put(_key(4), b"old" + b"x" * 61)
            yield env.timeout(200_000)
            yield from c.get(_key(4), size_hint=64)  # warm hit on v1
            # Overwrite through a *different* client so this client's
            # cache still points at the superseded version.
            yield from c2.put(_key(4), b"new" + b"y" * 61)
            yield env.timeout(200_000)
            return (yield from c.get(_key(4), size_hint=64))

        got = run1(env, work())
        assert got == b"new" + b"y" * 61

    def test_delete_invalidates_cached_slot(self, env):
        from repro.rdma.rpc import RpcFault

        setup = _cached_store(env)
        c = setup.client()

        def work():
            yield from c.put(_key(5), b"d" * 64)
            yield env.timeout(200_000)
            yield from c.get(_key(5), size_hint=64)
            yield from c.delete(_key(5))
            assert _key(5) not in c._loc_cache  # dropped eagerly
            try:
                yield from c.get(_key(5), size_hint=64)
            except RpcFault:
                return "gone"
            return "found"

        assert run1(env, work()) == "gone"


class TestFlushes:
    def test_cleaning_start_flushes_partition(self, env):
        setup = _cached_store(env)
        c = setup.client()

        def fill():
            for i in range(8):
                for v in range(2):
                    yield from c.put(_key(i), bytes([v]) * 64)
            yield env.timeout(500_000)
            for i in range(8):
                yield from c.get(_key(i), size_hint=64)

        run1(env, fill())
        assert len(c._loc_cache) == 8
        env.run(setup.server.trigger_cleaning())
        # The cleaning-start notice flushed every entry on partition 0.
        assert len(c._loc_cache) == 0

    def test_degradation_flushes_partition(self, env):
        setup = _cached_store(env)
        c = setup.client()
        res = c.enable_resilience(RetryPolicy(), random.Random(7))

        def work():
            yield from c.put(_key(6), b"e" * 64)
            yield env.timeout(200_000)
            yield from c.get(_key(6), size_hint=64)
            assert len(c._loc_cache) == 1
            # Demote partition 0 (threshold consecutive pure faults).
            for _ in range(res.policy.degrade_threshold):
                res.note_pure_fault(0, env.now)
            yield from c.get(_key(6), size_hint=64)

        run1(env, work())
        assert c.degraded_reads == 1
        assert len(c._loc_cache) == 0
