"""Hopscotch table and Erda's two-version atomic region."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StoreError
from repro.kv.hopscotch import (
    ERDA_ENTRY_SIZE,
    ERDA_GRANULE,
    HopscotchTable,
    TwoVersions,
    client_scan_neighborhood,
)
from repro.nvm.device import NVMDevice
from repro.sim.kernel import Environment


@pytest.fixture
def table(env):
    t = HopscotchTable(NVMDevice(env, 1 << 16), 0, n_buckets=256, H=8)
    return t


class TestTwoVersions:
    def test_roundtrip(self):
        region = TwoVersions(off1=160, off2=320, tag=5)
        assert TwoVersions.unpack(region.pack()) == region

    def test_none_encoding(self):
        region = TwoVersions(off1=None, off2=None, tag=0)
        assert TwoVersions.unpack(region.pack()) == region
        assert region.pack() == 0

    def test_offset_zero_is_representable(self):
        region = TwoVersions(off1=0, off2=None)
        assert TwoVersions.unpack(region.pack()).off1 == 0

    def test_push_shifts_versions(self):
        r0 = TwoVersions(off1=None, off2=None, tag=0)
        r1 = r0.push(64)
        r2 = r1.push(128)
        assert (r2.off1, r2.off2) == (128, 64)
        r3 = r2.push(192)
        assert (r3.off1, r3.off2) == (192, 128)  # 64 fell off: only two

    def test_tag_wraps(self):
        r = TwoVersions(off1=None, off2=None, tag=255).push(16)
        assert r.tag == 0

    def test_misaligned_offset_rejected(self):
        with pytest.raises(StoreError):
            TwoVersions(off1=17, off2=None).pack()

    @given(
        off1=st.one_of(st.none(), st.integers(0, 1 << 20).map(lambda x: x * 16)),
        off2=st.one_of(st.none(), st.integers(0, 1 << 20).map(lambda x: x * 16)),
        tag=st.integers(0, 255),
    )
    def test_roundtrip_property(self, off1, off2, tag):
        region = TwoVersions(off1=off1, off2=off2, tag=tag)
        assert TwoVersions.unpack(region.pack()) == region


class TestHopscotch:
    def test_insert_lookup(self, table):
        region = table.insert_or_update(1234, 160)
        assert region.off1 == 160 and region.off2 is None
        found = table.lookup(1234)
        assert found is not None and found[1].off1 == 160

    def test_update_pushes_version(self, table):
        table.insert_or_update(1234, 160)
        region = table.insert_or_update(1234, 320)
        assert (region.off1, region.off2) == (320, 160)

    def test_lookup_missing(self, table):
        assert table.lookup(999) is None

    def test_entries_stay_in_neighborhood(self, table):
        """Insert colliding keys; every entry must remain within H of
        its home bucket (the hopscotch invariant clients rely on)."""
        home = 10
        fps = [home + k * table.n_buckets for k in range(1, table.H + 1)]
        for i, fp in enumerate(fps):
            table.insert_or_update(fp, i * 16)
        for fp in fps:
            found = table.lookup(fp)
            assert found is not None
            idx, _ = found
            assert 0 <= idx - table.home_of(fp) < table.H

    def test_displacement_moves_blockers(self, env):
        """Fill a neighborhood, then insert keys that force hops."""
        table = HopscotchTable(NVMDevice(env, 1 << 16), 0, n_buckets=64, H=4)
        # keys homed at consecutive buckets create pressure
        inserted = []
        for fp in range(1, 40):
            try:
                table.insert_or_update(fp, (fp % 100) * 16)
                inserted.append(fp)
            except StoreError:
                break
        for fp in inserted:
            found = table.lookup(fp)
            assert found is not None, fp
            idx, region = found
            assert idx - table.home_of(fp) < table.H

    def test_neighborhood_offset_span(self, table):
        off, length = table.neighborhood_offset(5)
        assert off == 5 * ERDA_ENTRY_SIZE
        assert length == table.H * ERDA_ENTRY_SIZE

    def test_neighborhood_clamped_at_table_end(self, table):
        fp = table.n_buckets - 2
        off, length = table.neighborhood_offset(fp)
        assert off + length <= table.table_bytes


class TestClientScan:
    def test_finds_entry_in_raw_bytes(self, table):
        table.insert_or_update(42, 480)
        off, length = table.neighborhood_offset(42)
        raw = table.device.read(table.base + off, length)
        region = client_scan_neighborhood(raw, 42)
        assert region is not None and region.off1 == 480

    def test_miss(self, table):
        raw = b"\x00" * (4 * ERDA_ENTRY_SIZE)
        assert client_scan_neighborhood(raw, 7) is None

    def test_bad_length_rejected(self):
        with pytest.raises(StoreError):
            client_scan_neighborhood(b"\x00" * 10, 7)
