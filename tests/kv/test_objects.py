"""Object layout: headers, flags, version pointers, torn-parse behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import CorruptObjectError
from repro.kv.objects import (
    FLAG_DURABLE,
    FLAG_TRANS,
    FLAG_VALID,
    HEADER_SIZE,
    NULL_PTR,
    OBJECT_HEADER,
    build_header,
    object_size,
    pack_ptr,
    parse_header,
    parse_object,
    unpack_ptr,
)


class TestHeader:
    def test_size_and_alignment(self):
        assert HEADER_SIZE == 40
        # u64 fields must be 8-byte aligned for atomic pointer fix-ups
        for field in ("pre_ptr", "nxt_ptr", "ts"):
            assert OBJECT_HEADER.offset_of(field) % 8 == 0

    def test_flags_offset_is_2(self):
        """set_object_flags pokes byte 2 directly; pin the layout."""
        assert OBJECT_HEADER.offset_of("flags") == 2

    def test_roundtrip(self):
        hdr = build_header(
            flags=FLAG_VALID | FLAG_DURABLE,
            klen=16,
            vlen=256,
            crc=0xDEADBEEF,
            pre_ptr=pack_ptr(1, 640),
            ts=12345,
        )
        obj = parse_object(hdr + b"k" * 16 + b"v" * 256)
        assert obj.well_formed
        assert obj.valid and obj.durable and not obj.transferred
        assert obj.klen == 16 and obj.vlen == 256
        assert obj.crc == 0xDEADBEEF
        assert unpack_ptr(obj.pre_ptr) == (1, 640)
        assert obj.key == b"k" * 16 and obj.value == b"v" * 256

    def test_parse_header_rejects_bad_magic(self):
        assert parse_header(b"\x00" * HEADER_SIZE) is None
        assert parse_header(b"\x00" * 4) is None

    def test_parse_object_torn_is_not_well_formed(self):
        hdr = build_header(flags=FLAG_VALID, klen=8, vlen=100, crc=0)
        # truncated: value missing
        obj = parse_object(hdr + b"k" * 8)
        assert not obj.well_formed
        assert obj.key == b"" and obj.value == b""

    def test_parse_object_zeroed_memory(self):
        obj = parse_object(b"\x00" * 128)
        assert not obj.well_formed

    def test_fragment_smaller_than_header_raises(self):
        with pytest.raises(CorruptObjectError):
            parse_object(b"\x01" * 10)

    def test_object_size(self):
        assert object_size(16, 1024) == HEADER_SIZE + 16 + 1024


class TestPointers:
    def test_null(self):
        assert unpack_ptr(NULL_PTR) is None

    def test_offset_zero_distinct_from_null(self):
        assert unpack_ptr(pack_ptr(0, 0)) == (0, 0)

    def test_pool_bit(self):
        assert unpack_ptr(pack_ptr(1, 12345)) == (1, 12345)

    def test_invalid_pool(self):
        with pytest.raises(ValueError):
            pack_ptr(2, 0)

    def test_offset_range_checked(self):
        with pytest.raises(ValueError):
            pack_ptr(0, 1 << 62)

    @given(st.integers(0, 1), st.integers(0, (1 << 40)))
    def test_roundtrip_property(self, pool, offset):
        assert unpack_ptr(pack_ptr(pool, offset)) == (pool, offset)


@given(
    flags=st.integers(0, 7),
    klen=st.integers(0, 64),
    vlen=st.integers(0, 4096),
    crc=st.integers(0, 0xFFFFFFFF),
    ts=st.integers(0, 1 << 62),
)
def test_header_roundtrip_property(flags, klen, vlen, crc, ts):
    hdr = build_header(flags=flags, klen=klen, vlen=vlen, crc=crc, ts=ts)
    obj = parse_object(hdr + b"K" * klen + b"V" * vlen)
    assert obj.well_formed
    assert (obj.flags, obj.klen, obj.vlen, obj.crc, obj.ts) == (
        flags,
        klen,
        vlen,
        crc,
        ts,
    )
