"""Bucketized NVM hash table."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StoreError
from repro.kv.hashtable import (
    ENTRY_SIZE,
    HashTableGeometry,
    NvmHashTable,
    Slot,
    client_lookup_bucket,
    key_fingerprint,
)
from repro.nvm.device import NVMDevice
from repro.sim.kernel import Environment


@pytest.fixture
def table(env):
    geom = HashTableGeometry(n_buckets=64, slots_per_bucket=4, probe_limit=4)
    device = NVMDevice(env, geom.table_bytes + 4096)
    return NvmHashTable(device, 0, geom)


class TestSlotPacking:
    def test_roundtrip(self):
        slot = Slot(pool=1, size=4096, offset=123456)
        assert Slot.unpack(slot.pack()) == slot

    def test_invalid_word_is_none(self):
        assert Slot.unpack(0) is None
        assert Slot.unpack(123456) is None  # valid bit clear

    def test_range_checks(self):
        with pytest.raises(StoreError):
            Slot(pool=2, size=0, offset=0).pack()
        with pytest.raises(StoreError):
            Slot(pool=0, size=1 << 22, offset=0).pack()
        with pytest.raises(StoreError):
            Slot(pool=0, size=0, offset=1 << 40).pack()

    @given(
        pool=st.integers(0, 1),
        size=st.integers(0, (1 << 22) - 1),
        offset=st.integers(0, (1 << 40) - 1),
    )
    def test_roundtrip_property(self, pool, size, offset):
        slot = Slot(pool=pool, size=size, offset=offset)
        assert Slot.unpack(slot.pack()) == slot


class TestGeometry:
    def test_sizes(self):
        g = HashTableGeometry(n_buckets=8, slots_per_bucket=4)
        assert g.bucket_bytes == 4 * ENTRY_SIZE
        assert g.table_bytes == 8 * 4 * ENTRY_SIZE

    def test_bucket_offset_wraps(self):
        g = HashTableGeometry(n_buckets=8)
        assert g.bucket_offset(9) == g.bucket_offset(1)

    def test_validation(self):
        with pytest.raises(StoreError):
            HashTableGeometry(n_buckets=0)


class TestFingerprint:
    def test_never_zero(self):
        assert key_fingerprint(b"") != 0
        assert key_fingerprint(b"anything") != 0

    def test_deterministic(self):
        assert key_fingerprint(b"k") == key_fingerprint(b"k")


class TestTableOps:
    def test_find_or_create_then_find(self, table):
        fp = key_fingerprint(b"alpha")
        off = table.find_or_create(fp)
        assert table.find(fp) == off
        assert table.find_or_create(fp) == off  # idempotent

    def test_find_missing(self, table):
        assert table.find(key_fingerprint(b"ghost")) is None

    def test_slot_lifecycle(self, table):
        fp = key_fingerprint(b"k")
        off = table.find_or_create(fp)
        assert table.read_cur(off) is None
        slot = Slot(pool=0, size=100, offset=640)
        table.set_cur(off, slot)
        assert table.read_cur(off) == slot
        table.clear_cur(off)
        assert table.read_cur(off) is None

    def test_promote_alt(self, table):
        fp = key_fingerprint(b"k")
        off = table.find_or_create(fp)
        old = Slot(pool=0, size=100, offset=0)
        new = Slot(pool=1, size=100, offset=64)
        table.set_cur(off, old)
        table.set_alt(off, new)
        table.promote_alt(off)
        assert table.read_cur(off) == new
        assert table.read_alt(off) is None

    def test_probe_overflow_raises(self, env):
        geom = HashTableGeometry(n_buckets=4, slots_per_bucket=1, probe_limit=1)
        table = NvmHashTable(NVMDevice(env, geom.table_bytes), 0, geom)
        # two fps landing in the same bucket exhaust its single slot
        fps = []
        fp = 1
        while len(fps) < 2:
            if fp % 4 == 0:
                fps.append(fp)
            fp += 1
        table.find_or_create(fps[0])
        with pytest.raises(StoreError, match="overflow"):
            table.find_or_create(fps[1])

    def test_iter_entries(self, table):
        for key in (b"a", b"b", b"c"):
            off = table.find_or_create(key_fingerprint(key))
            table.set_cur(off, Slot(pool=0, size=1, offset=0))
        entries = list(table.iter_entries())
        assert len(entries) == 3

    def test_persist_entry(self, table):
        fp = key_fingerprint(b"p")
        off = table.find_or_create(fp)
        table.set_cur(off, Slot(pool=0, size=8, offset=0))
        table.persist_entry(off)
        assert table.device.is_persistent(table.base + off, ENTRY_SIZE)


class TestClientLookup:
    def test_client_parses_what_server_wrote(self, table):
        fp = key_fingerprint(b"shared-key")
        off = table.find_or_create(fp)
        slot = Slot(pool=0, size=312, offset=1280)
        table.set_cur(off, slot)
        geom = table.geom
        bucket = geom.bucket_of(fp)
        raw = table.device.read(
            table.base + geom.bucket_offset(bucket), geom.bucket_bytes
        )
        found = client_lookup_bucket(raw, fp, geom)
        assert found is not None
        cur, alt = found
        assert cur == slot and alt is None

    def test_client_miss_returns_none(self, table):
        geom = table.geom
        raw = b"\x00" * geom.bucket_bytes
        assert client_lookup_bucket(raw, 12345, geom) is None

    def test_wrong_length_rejected(self, table):
        with pytest.raises(StoreError):
            client_lookup_bucket(b"\x00" * 10, 1, table.geom)
