"""Log-structured pool allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PoolExhaustedError
from repro.kv.logpool import LogPool
from repro.nvm.device import NVMDevice
from repro.sim.kernel import Environment


@pytest.fixture
def pool(env):
    return LogPool(NVMDevice(env, 1 << 16), base=0, size=1 << 16)


class TestAllocate:
    def test_append_only_monotone(self, pool):
        offs = [pool.allocate(100) for _ in range(5)]
        assert offs == sorted(offs)
        assert all(o % pool.align == 0 for o in offs)

    def test_alignment_rounds_up(self, pool):
        a = pool.allocate(1)
        b = pool.allocate(1)
        assert b - a == pool.align

    def test_exhaustion(self, env):
        pool = LogPool(NVMDevice(env, 4096), base=0, size=256)
        pool.allocate(200)
        with pytest.raises(PoolExhaustedError):
            pool.allocate(200)

    def test_zero_size_rejected(self, pool):
        with pytest.raises(PoolExhaustedError):
            pool.allocate(0)

    def test_journal_records_every_allocation(self, pool):
        pool.allocate(10)
        pool.allocate(20)
        assert [(a.offset, a.size) for a in pool.allocations] == [
            (0, 10),
            (64, 20),
        ]

    def test_can_fit(self, env):
        pool = LogPool(NVMDevice(env, 4096), base=0, size=128)
        assert pool.can_fit(128)
        pool.allocate(64)
        assert pool.can_fit(64)
        assert not pool.can_fit(65)


class TestCleaningTrigger:
    def test_needs_cleaning_threshold(self, env):
        pool = LogPool(
            NVMDevice(env, 4096), base=0, size=1024, reserve_fraction=0.25
        )
        assert not pool.needs_cleaning()
        pool.allocate(720)  # rounds to 768 used; 256 free = threshold
        assert pool.needs_cleaning()

    def test_reset(self, pool):
        pool.allocate(100)
        pool.reset()
        assert pool.used == 0 and not pool.allocations
        assert pool.allocate(10) == 0


class TestAddressing:
    def test_abs_addr(self, env):
        pool = LogPool(NVMDevice(env, 1 << 16), base=4096, size=8192)
        assert pool.abs_addr(64) == 4160

    def test_abs_addr_bounds(self, pool):
        with pytest.raises(PoolExhaustedError):
            pool.abs_addr(1 << 16)

    def test_read_write_through_base(self, env):
        dev = NVMDevice(env, 1 << 16)
        pool = LogPool(dev, base=1024, size=4096)
        pool.write(0, b"at base")
        assert dev.read(1024, 7) == b"at base"
        assert pool.read(0, 7) == b"at base"

    def test_bad_align_rejected(self, env):
        with pytest.raises(PoolExhaustedError):
            LogPool(NVMDevice(env, 4096), 0, 4096, align=48)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(1, 500), max_size=40))
def test_allocations_never_overlap_property(sizes):
    env = Environment()
    pool = LogPool(NVMDevice(env, 1 << 16), base=0, size=1 << 16)
    spans = []
    for size in sizes:
        if not pool.can_fit(size):
            break
        off = pool.allocate(size)
        spans.append((off, off + size))
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert s2 >= e1
