"""FaultInjector firing semantics, determinism, and arming/disarming."""

from repro.faults.injector import FaultInjector, arm_store, disarm_store
from repro.faults.plan import FaultPlan, FaultRule
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from tests.conftest import small_store


def make_injector(env, rules, seed=1, tracer=None):
    plan = FaultPlan("t", tuple(rules))
    return FaultInjector(env, plan, RngRegistry(seed), tracer=tracer)


class TestFire:
    def test_deterministic_rule_fires_every_visit(self, env):
        inj = make_injector(env, [FaultRule("qp_error", site="qp.write")])
        assert inj.fire("qp.write").kind == "qp_error"
        assert inj.fire("qp.write").kind == "qp_error"
        assert inj.fire("qp.read") is None  # site filter
        assert len(inj.events) == 2

    def test_op_counter_is_per_site(self, env):
        inj = make_injector(
            env, [FaultRule("qp_error", site="qp.write", after_op=1)]
        )
        assert inj.fire("qp.write") is None  # write op 0
        assert inj.fire("qp.read") is None  # read op 0: separate counter
        assert inj.fire("qp.write").kind == "qp_error"  # write op 1
        assert inj.site_op_counts() == {"qp.write": 2, "qp.read": 1}

    def test_max_fires_budget(self, env):
        inj = make_injector(
            env, [FaultRule("qp_error", site="qp.write", max_fires=2)]
        )
        assert inj.fire("qp.write") is not None
        assert inj.fire("qp.write") is not None
        assert inj.fire("qp.write") is None
        assert inj.counts() == {"qp_error": 2}

    def test_first_matching_rule_wins(self, env):
        inj = make_injector(
            env,
            [
                FaultRule("completion_delay", site="qp.*", delay_ns=5.0),
                FaultRule("qp_error", site="qp.write"),
            ],
        )
        act = inj.fire("qp.write")
        assert act.kind == "completion_delay"
        assert act.delay_ns == 5.0

    def test_partition_filter(self, env):
        inj = make_injector(
            env, [FaultRule("pause", site="bg.verifier", partition=1, delay_ns=1.0)]
        )
        assert inj.fire("bg.verifier", partition=0) is None
        assert inj.fire("bg.verifier") is None  # context-free never matches
        assert inj.fire("bg.verifier", partition=1) is not None

    def test_action_carries_rule_parameters(self, env):
        inj = make_injector(
            env,
            [FaultRule("nvm_spike", delay_ns=7.0, factor=3.0, name="spike")],
        )
        act = inj.fire("nvm.persist")
        assert (act.kind, act.delay_ns, act.factor, act.rule) == (
            "nvm_spike",
            7.0,
            3.0,
            "spike",
        )

    def test_schedule_records_firing_order(self, env):
        inj = make_injector(env, [FaultRule("qp_error", site="qp.*")])
        inj.fire("qp.write")
        env.run(until=env.timeout(10.0))
        inj.fire("qp.read", partition=2)
        sched = inj.schedule()
        assert sched == [
            (0.0, "qp.write", "qp_error", "qp_error@qp.*", 0, None),
            (10.0, "qp.read", "qp_error", "qp_error@qp.*", 0, 2),
        ]


class TestDeterminism:
    def probabilistic_schedule(self, seed):
        env = Environment()
        inj = make_injector(
            env,
            [FaultRule("qp_error", site="qp.write", probability=0.3)],
            seed=seed,
        )
        for _ in range(200):
            inj.fire("qp.write")
        return inj.schedule()

    def test_same_seed_same_schedule(self):
        assert self.probabilistic_schedule(7) == self.probabilistic_schedule(7)

    def test_different_seed_different_schedule(self):
        assert self.probabilistic_schedule(7) != self.probabilistic_schedule(8)

    def test_coins_only_spent_on_eligible_ops(self):
        """Ineligible visits must not advance the rule's RNG stream, or
        unrelated traffic would perturb the fault schedule."""

        def schedule(with_noise):
            env = Environment()
            inj = make_injector(
                env,
                [FaultRule("qp_error", site="qp.write", probability=0.3)],
                seed=7,
            )
            for _ in range(100):
                if with_noise:
                    inj.fire("qp.read")  # ineligible: different site
                inj.fire("qp.write")
            return [t[4] for t in inj.schedule()]  # op indices

        assert schedule(False) == schedule(True)


class TestContextPartition:
    def test_one_shot_semantics(self, env):
        inj = make_injector(env, [])
        inj.set_context_partition(3)
        assert inj.pop_context_partition() == 3
        assert inj.pop_context_partition() is None


class TestTracing:
    def test_fault_events_reach_tracer(self, env):
        tracer = Tracer(env)
        inj = make_injector(
            env, [FaultRule("qp_error", site="qp.write")], tracer=tracer
        )
        inj.fire("qp.write")
        inj.fire("qp.write", partition=1)
        kinds = tracer.counts()
        assert kinds.get("fault.qp_error") == 2


class TestArming:
    def test_arm_and_disarm_store(self, env):
        setup = small_store("efactory", env)
        assert setup.fabric.injector is None
        inj = arm_store(setup, FaultPlan("t"), rngs=RngRegistry(1))
        assert setup.fabric.injector is inj
        assert setup.server.rpc.injector is inj
        assert setup.server.device.injector is inj
        disarm_store(setup)
        assert setup.fabric.injector is None
        assert setup.server.rpc.injector is None
        assert setup.server.device.injector is None
        setup.server.stop()
