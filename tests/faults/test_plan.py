"""FaultRule/FaultPlan validation, trigger semantics, shipped plans."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultRule, site_matches
from repro.faults.plans import SHIPPED_PLANS, shipped_plan, shipped_plan_names


class TestSiteMatches:
    def test_exact(self):
        assert site_matches("qp.write", "qp.write")
        assert not site_matches("qp.write", "qp.read")

    def test_wildcard(self):
        assert site_matches("*", "nvm.persist")

    def test_prefix(self):
        assert site_matches("qp.*", "qp.cas")
        assert not site_matches("qp.*", "rpc.dispatch")

    def test_prefix_requires_dot(self):
        # "bg.*" must not match a hypothetical "bgx.y" site
        assert not site_matches("bg.*", "bgx.y")


class TestFaultRule:
    def test_site_defaults_from_kind(self):
        rule = FaultRule("rpc_stall", delay_ns=10.0)
        assert rule.site == "rpc.dispatch"
        assert rule.name == "rpc_stall@rpc.dispatch"

    def test_site_narrowing_allowed(self):
        rule = FaultRule("qp_error", site="qp.read")
        assert rule.site == "qp.read"

    def test_kind_site_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule("nvm_spike", site="qp.write")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultRule("power_surge")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": 1.5},
            {"probability": -0.1},
            {"delay_ns": -1.0},
            {"factor": 0.0},
            {"after_op": -1},
            {"after_op": 5, "before_op": 5},
            {"t_start": 10.0, "t_end": 10.0},
            {"max_fires": 0},
        ],
    )
    def test_invalid_triggers_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultRule("qp_error", **kwargs)

    def test_eligible_op_window(self):
        rule = FaultRule("qp_error", site="qp.write", after_op=2, before_op=4)
        hits = [rule.eligible("qp.write", i, 0.0) for i in range(6)]
        assert hits == [False, False, True, True, False, False]

    def test_eligible_time_window(self):
        rule = FaultRule("qp_error", t_start=100.0, t_end=200.0)
        assert not rule.eligible("qp.write", 0, 99.9)
        assert rule.eligible("qp.write", 0, 100.0)
        assert not rule.eligible("qp.write", 0, 200.0)

    def test_eligible_site_filter(self):
        rule = FaultRule("qp_error", site="qp.read")
        assert rule.eligible("qp.read", 0, 0.0)
        assert not rule.eligible("qp.write", 0, 0.0)


class TestFaultPlan:
    def test_needs_name(self):
        with pytest.raises(ConfigError):
            FaultPlan("")

    def test_empty_len_iter(self):
        plan = FaultPlan("nothing")
        assert plan.empty
        assert len(plan) == 0
        assert list(plan) == []

    def test_rules_coerced_to_tuple(self):
        plan = FaultPlan("p", rules=[FaultRule("qp_error")])
        assert isinstance(plan.rules, tuple)
        assert len(plan) == 1


class TestShippedPlans:
    def test_registry_names_match(self):
        assert set(shipped_plan_names()) == set(SHIPPED_PLANS)

    @pytest.mark.parametrize("name", sorted(SHIPPED_PLANS))
    def test_every_plan_builds_nonempty(self, name):
        plan = shipped_plan(name)
        assert plan.name == name
        assert not plan.empty
        for rule in plan:
            assert rule.kind in FAULT_KINDS

    def test_overrides_forwarded(self):
        plan = shipped_plan("qp-flap", probability=0.5)
        assert all(rule.probability == 0.5 for rule in plan)

    def test_unknown_plan_rejected(self):
        with pytest.raises(ConfigError):
            shipped_plan("does-not-exist")
