"""The generated fault-site registry (single source of truth)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults.plans import shipped_plan, shipped_plan_names
from repro.faults.sites import (
    SITES,
    all_known_sites,
    crash_matrix_sites,
    family_prefixes,
    is_known_site,
    validate_pattern,
)
from repro.harness.crashmatrix import DEFAULT_SITES


def test_crash_matrix_order_is_the_legacy_tuple():
    # DEFAULT_SITES order is part of the bit-identical report surface;
    # the registry must reproduce the pre-registry hardcoded tuple.
    assert DEFAULT_SITES == crash_matrix_sites() == (
        "nvm.store64",
        "nvm.flush",
        "nvm.persist",
        "rpc.dispatch",
        "bg.verifier",
        "bg.cleaner.compress",
        "bg.cleaner.merge",
        "bg.cleaner.finish",
    )


def test_registry_is_internally_consistent():
    names = list(all_known_sites())
    assert len(names) == len(set(names)), "duplicate site names"
    for row in SITES:
        assert row.fired_by and row.description
        if row.members is not None:
            assert not row.dynamic
            for member in row.site_names():
                assert member.startswith(row.name + ".")
    assert "bg.cleaner" in family_prefixes()
    assert "cluster" in family_prefixes()


def test_known_site_lookup():
    assert is_known_site("nvm.persist")
    assert is_known_site("qp.write")
    assert is_known_site("bg.cleaner.merge")
    assert not is_known_site("nvm.presist")
    assert not is_known_site("qp.writee")


def test_validate_pattern_accepts_wildcards_and_dynamic_families():
    validate_pattern("*")
    validate_pattern("qp.*")
    validate_pattern("cluster.node0")  # dynamic family member
    validate_pattern("bg.cleaner.compress")


@pytest.mark.parametrize("bad", ["nvm.presist", "qp.writee", "zz.*"])
def test_validate_pattern_rejects_unknown(bad):
    with pytest.raises(ConfigError):
        validate_pattern(bad)


def test_every_shipped_plan_validates_against_the_registry():
    for name in shipped_plan_names():
        plan = shipped_plan(name)
        for rule in plan.rules:
            validate_pattern(rule.site, context=f"plan {plan.name!r}")
