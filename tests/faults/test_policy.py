"""RetryPolicy validation, backoff math, and the degradation state machine."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.faults.policy import ClientResilience, RetryPolicy


def make_res(**policy_kwargs):
    policy = RetryPolicy(**policy_kwargs)
    return ClientResilience(policy, np.random.default_rng(0))


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_ns": -1.0},
            {"max_retries": -1},
            {"backoff_base_ns": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"reconnect_ns": -1.0},
            {"degrade_threshold": 0},
            {"degrade_window_ns": -1.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestBackoff:
    def test_exponential_growth_and_cap(self):
        res = make_res(
            backoff_base_ns=100.0,
            backoff_factor=2.0,
            backoff_max_ns=350.0,
            jitter=0.0,
        )
        assert res.backoff_ns(1) == 100.0
        assert res.backoff_ns(2) == 200.0
        assert res.backoff_ns(3) == 350.0  # capped, not 400
        assert res.backoff_ns(4) == 350.0

    def test_jitter_bounds_and_determinism(self):
        res = make_res(backoff_base_ns=1000.0, jitter=0.2)
        values = [res.backoff_ns(1) for _ in range(50)]
        assert all(800.0 <= v <= 1200.0 for v in values)
        res2 = make_res(backoff_base_ns=1000.0, jitter=0.2)
        assert values == [res2.backoff_ns(1) for _ in range(50)]


class TestDegradation:
    def test_below_threshold_no_demotion(self):
        res = make_res(degrade_threshold=3)
        res.note_pure_fault(0, now=0.0)
        res.note_pure_fault(0, now=1.0)
        assert not res.partition_degraded(0, now=2.0)
        assert res.demotions == 0

    def test_success_resets_consecutive_count(self):
        res = make_res(degrade_threshold=2)
        res.note_pure_fault(0, now=0.0)
        res.note_pure_ok(0)
        res.note_pure_fault(0, now=1.0)
        assert not res.partition_degraded(0, now=2.0)

    def test_demote_then_window_then_probe_promote(self):
        res = make_res(degrade_threshold=2, degrade_window_ns=100.0)
        res.note_pure_fault(0, now=0.0)
        res.note_pure_fault(0, now=1.0)  # hits threshold: demoted
        assert res.demotions == 1
        assert res.partition_degraded(0, now=50.0)
        assert res.degraded_partitions(50.0) == [0]
        # window expired: probing, pure reads allowed again
        assert not res.partition_degraded(0, now=101.0 + 1.0)
        res.note_pure_ok(0)  # probe succeeded
        assert res.promotions == 1
        assert not res.partition_degraded(0, now=200.0)

    def test_probe_failure_redemotes_immediately(self):
        res = make_res(degrade_threshold=3, degrade_window_ns=100.0)
        for t in range(3):
            res.note_pure_fault(0, now=float(t))
        assert res.demotions == 1
        assert not res.partition_degraded(0, now=200.0)  # flips to probing
        res.note_pure_fault(0, now=200.0)  # single fault while probing
        assert res.demotions == 2
        assert res.partition_degraded(0, now=250.0)

    def test_partitions_tracked_independently(self):
        res = make_res(degrade_threshold=1, degrade_window_ns=100.0)
        res.note_pure_fault(1, now=0.0)
        assert res.partition_degraded(1, now=10.0)
        assert not res.partition_degraded(0, now=10.0)
        assert res.degraded_partitions(10.0) == [1]


class TestCounters:
    def test_snapshot_surface(self):
        res = make_res()
        res.note_retry("get", 1, "QPError")
        res.note_timeout()
        res.note_reconnect()
        res.note_gave_up("put")
        snap = res.snapshot()
        assert snap == {
            "retries": 1,
            "timeouts": 1,
            "reconnects": 1,
            "gave_up": 1,
            "demotions": 0,
            "promotions": 0,
        }
