"""CRC-32 implementations and the cost model."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.crc.cost import CrcCostModel
from repro.crc.crc32 import crc32, crc32_combine, crc32_fast
from repro.errors import ConfigError


class TestReferenceImplementation:
    def test_known_vectors(self):
        # published CRC-32 (IEEE) check values
        assert crc32(b"") == 0
        assert crc32(b"123456789") == 0xCBF43926
        assert crc32(b"The quick brown fox jumps over the lazy dog") == 0x414FA339

    def test_matches_zlib(self):
        for data in (b"", b"a", b"ab" * 1000, bytes(range(256))):
            assert crc32(data) == zlib.crc32(data)

    def test_chaining(self):
        whole = crc32(b"hello world")
        chained = crc32(b" world", crc32(b"hello"))
        assert whole == chained

    @given(st.binary(max_size=512))
    def test_fast_matches_reference(self, data):
        assert crc32_fast(data) == crc32(data)

    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_chaining_property(self, a, b):
        assert crc32(a + b) == crc32(b, crc32(a))

    @given(st.binary(min_size=1, max_size=128), st.integers(0, 127))
    def test_detects_single_bit_flip(self, data, pos):
        pos %= len(data)
        corrupted = bytearray(data)
        corrupted[pos] ^= 0x01
        assert crc32(data) != crc32(bytes(corrupted))


class TestCombine:
    @given(st.binary(max_size=200), st.binary(max_size=200))
    def test_combine_equals_concatenation(self, a, b):
        assert crc32_combine(crc32(a), crc32(b), len(b)) == crc32(a + b)

    def test_zero_length_b(self):
        assert crc32_combine(0x1234, 0, 0) == 0x1234

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            crc32_combine(0, 0, -1)


class TestCostModel:
    def test_paper_calibration_point(self):
        """§3: verifying a 4 KiB object costs about 4.4 µs."""
        cost = CrcCostModel().cost_ns(4096)
        assert 4300 <= cost <= 4500

    def test_affine(self):
        m = CrcCostModel(base_ns=100, ns_per_byte=2)
        assert m.cost_ns(0) == 100
        assert m.cost_ns(50) == 200

    def test_validation(self):
        with pytest.raises(ConfigError):
            CrcCostModel(base_ns=-1)
        with pytest.raises(ConfigError):
            CrcCostModel().cost_ns(-5)
