"""The paper's §1 contribution bullets as coarse, fast integration
checks (single-client latencies; the benchmarks assert the full
throughput shapes).

Only robust *orderings* are asserted here, never magnitudes, so these
stay stable under recalibration.
"""

import pytest

from repro.harness.runner import RunSpec, run_experiment
from repro.workloads.ycsb import update_only, ycsb_c


def _median(store, workload, kind, size):
    result = run_experiment(
        RunSpec(
            store=store,
            workload=workload(value_len=size, key_count=64),
            n_clients=1,
            ops_per_client=80,
            warmup_ops=10,
        )
    )
    return result.latency.median(kind)


class TestClaim1_DurableWritesLoseToRpc:
    """'existing remote crash consistency schemes either lose write
    performance advantage over RPCs...'"""

    def test_saw_and_imm_slower_than_ca_at_4k(self):
        ca = _median("ca", update_only, "put", 4096)
        assert _median("saw", update_only, "put", 4096) > 1.5 * ca
        assert _median("imm", update_only, "put", 4096) > 1.3 * ca


class TestClaim2_CrcOnReadPathHurts:
    """'...or maintain write performance at the cost of reading
    performance.'"""

    def test_erda_forca_reads_slower_than_efactory_at_4k(self):
        ef = _median("efactory", ycsb_c, "get", 4096)
        assert _median("erda", ycsb_c, "get", 4096) > 1.5 * ef
        assert _median("forca", ycsb_c, "get", 4096) > 2.0 * ef

    def test_gap_negligible_at_64b(self):
        """Footnote 2: at small values Erda ~ eFactory."""
        ef = _median("efactory", ycsb_c, "get", 64)
        erda = _median("erda", ycsb_c, "get", 64)
        assert erda < 1.25 * ef


class TestClaim3_EFactoryHasBothFast:
    def test_put_tracks_the_unsafe_baseline(self):
        """Client-active + async durability: eFactory's PUT costs about
        what CA's does (the CRC overlaps the allocation RTT)."""
        ca = _median("ca", update_only, "put", 1024)
        ef = _median("efactory", update_only, "put", 1024)
        assert ef < 1.25 * ca

    def test_get_tracks_the_verification_free_readers(self):
        imm = _median("imm", ycsb_c, "get", 1024)
        ef = _median("efactory", ycsb_c, "get", 1024)
        assert ef < 1.1 * imm
