"""Replicated runs with confidence intervals."""

import pytest

from repro.errors import ConfigError
from repro.harness.repeat import run_replicated
from repro.harness.runner import RunSpec
from repro.workloads.ycsb import update_only, ycsb_b


def _spec(store="ca", workload=None):
    return RunSpec(
        store=store,
        workload=workload or ycsb_b(value_len=128, key_count=64),
        n_clients=2,
        ops_per_client=50,
        warmup_ops=5,
    )


def test_aggregates_over_seeds():
    rep = run_replicated(_spec(), seeds=(1, 2, 3))
    assert len(rep.results) == 3
    assert rep.throughput_mops.mean > 0
    assert rep.throughput_mops.half_width >= 0
    assert len(rep.throughput_mops.samples) == 3
    assert rep.total_errors == 0
    assert "Mops/s" in rep.describe()


def test_seed_variance_is_nonzero():
    rep = run_replicated(_spec(), seeds=(1, 2, 3))
    assert len(set(rep.throughput_mops.samples)) > 1


def test_put_only_has_nan_get():
    rep = run_replicated(
        _spec(workload=update_only(value_len=64, key_count=32)), seeds=(1,)
    )
    assert rep.get_p50_ns.mean != rep.get_p50_ns.mean  # NaN
    assert rep.put_p50_ns.mean > 0


def test_empty_seeds_rejected():
    with pytest.raises(ConfigError):
        run_replicated(_spec(), seeds=())
