"""Latency recording and summaries."""

import math

import numpy as np
import pytest

from repro.analysis.stats import ci95, fmt_mops, fmt_ns, geo_mean, improvement, speedup
from repro.analysis.tables import Table, banner
from repro.errors import ConfigError
from repro.harness.metrics import LatencyRecorder, summarize


class TestLatencyRecorder:
    def test_record_and_percentiles(self):
        rec = LatencyRecorder()
        for v in range(1, 101):
            rec.record("get", float(v))
        assert rec.count("get") == 100
        assert rec.median("get") == pytest.approx(50.5)
        assert rec.p99("get") == pytest.approx(99.01)
        assert rec.mean("get") == pytest.approx(50.5)

    def test_kinds_separated_and_pooled(self):
        rec = LatencyRecorder()
        rec.record("get", 10.0)
        rec.record("put", 30.0)
        assert rec.kinds() == ["get", "put"]
        assert rec.count() == 2
        assert rec.mean() == 20.0
        assert rec.mean("put") == 30.0

    def test_empty_is_nan(self):
        rec = LatencyRecorder()
        assert math.isnan(rec.median("get"))
        assert rec.array().size == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            LatencyRecorder().record("get", -1.0)

    def test_merge(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        a.record("get", 1.0)
        b.record("get", 3.0)
        a.merge(b)
        assert a.count("get") == 2 and a.mean("get") == 2.0

    def test_summarize(self):
        rec = LatencyRecorder()
        for v in [10.0, 20.0, 30.0, 40.0]:
            rec.record("op", v)
        s = summarize(rec)
        assert s.count == 4
        assert s.mean_ns == 25.0
        assert s.max_ns == 40.0
        assert s.p50_us == pytest.approx(0.025)

    def test_summarize_empty(self):
        s = summarize(LatencyRecorder())
        assert s.count == 0 and math.isnan(s.mean_ns)


class TestStats:
    def test_speedup_and_improvement(self):
        assert speedup(2.0, 1.0) == 2.0
        assert improvement(1.42, 1.0) == pytest.approx(0.42)
        assert math.isnan(speedup(1.0, 0.0))

    def test_geo_mean(self):
        assert geo_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geo_mean([]))

    def test_ci95(self):
        mean, half = ci95([10.0] * 16)
        assert mean == 10.0 and half == 0.0
        mean, half = ci95(list(range(100)))
        assert half > 0

    def test_formatters(self):
        assert fmt_ns(500) == "500ns"
        assert fmt_ns(1500) == "1.50us"
        assert fmt_ns(2.5e6) == "2.50ms"
        assert fmt_ns(float("nan")) == "n/a"
        assert fmt_mops(1.5) == "1.50 Mops/s"
        assert fmt_mops(0.25) == "250.0 Kops/s"


class TestTable:
    def test_render_aligned(self):
        t = Table(["name", "value"])
        t.add("short", 1.5)
        t.add("a-longer-name", 22)
        out = t.render()
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "1.500" in out and "22" in out

    def test_wrong_arity_rejected(self):
        t = Table(["a"])
        with pytest.raises(ValueError):
            t.add(1, 2)

    def test_banner(self):
        assert banner("hello").startswith("== hello ")
