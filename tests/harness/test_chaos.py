"""Chaos harness: reproducibility, timing identity, and the shipped gauntlet."""

import pytest

import numpy as np

from repro.faults.injector import arm_store
from repro.faults.plan import FaultPlan
from repro.faults.plans import shipped_plan_names
from repro.harness.chaos import ChaosSpec, run_chaos_experiment
from repro.harness.runner import RunSpec, run_experiment
from repro.sim.rng import RngRegistry
from repro.workloads.ycsb import WorkloadSpec

#: Small but fault-exposed: boosted probabilities so short CI runs
#: actually exercise the retry/reconnect machinery.
SMALL = dict(n_clients=2, ops_per_client=30, key_count=12, seed=7)


class TestReproducibility:
    def test_same_spec_same_report(self):
        spec = ChaosSpec(
            store="efactory", plan="qp-flap", plan_overrides={"probability": 0.05}, **SMALL
        )
        a = run_chaos_experiment(spec)
        b = run_chaos_experiment(spec)
        assert a.fault_schedule == b.fault_schedule
        assert a.as_dict() == b.as_dict()

    def test_seed_changes_schedule(self):
        base = dict(SMALL, plan_overrides={"probability": 0.05})
        a = run_chaos_experiment(ChaosSpec(store="efactory", plan="qp-flap", **base))
        base["seed"] = 8
        b = run_chaos_experiment(ChaosSpec(store="efactory", plan="qp-flap", **base))
        assert a.fault_schedule != b.fault_schedule


class TestArmedEmptyPlanTimingIdentity:
    def test_empty_plan_changes_no_timings(self):
        """Arming an empty plan must leave every simulated timing
        untouched: the hooks' zero-cost-when-armed-but-idle guarantee."""
        spec = RunSpec(
            store="efactory",
            workload=WorkloadSpec("mixed", read_fraction=0.5, key_count=64),
            n_clients=2,
            ops_per_client=40,
            warmup_ops=5,
            seed=5,
        )
        baseline = run_experiment(spec)
        armed = run_experiment(
            spec,
            post_setup=lambda env, setup: arm_store(
                setup, FaultPlan("noop"), rngs=RngRegistry(1)
            ),
        )
        assert armed.window_ns == baseline.window_ns
        assert np.array_equal(armed.latency.array(), baseline.latency.array())


@pytest.mark.parametrize("plan", shipped_plan_names())
def test_efactory_survives_every_shipped_plan(plan):
    """The headline guarantee: zero advertised-guarantee violations for
    eFactory under every shipped chaos plan."""
    report = run_chaos_experiment(ChaosSpec(store="efactory", plan=plan, **SMALL))
    assert report.ok, report.violations
    assert report.weaknesses == []  # efactory advertises consistent GETs
    assert report.audited_keys == SMALL["key_count"]


def test_rpc_baseline_survives_stalls():
    report = run_chaos_experiment(ChaosSpec(store="rpc", plan="rpc-stall", **SMALL))
    assert report.ok, report.violations


def test_heavy_qp_faults_recovered_via_reconnect():
    """Boosted fault rate: retries/reconnects must fire and the store
    must still come out clean."""
    report = run_chaos_experiment(
        ChaosSpec(
            store="efactory",
            plan="drop-completions",
            plan_overrides={"probability": 0.12},
            **SMALL,
        )
    )
    assert report.ok, report.violations
    assert report.resilience["reconnects"] > 0
    assert report.fault_counts.get("completion_drop", 0) > 0
    assert report.availability == 1.0  # every op eventually succeeded


def test_report_shape():
    report = run_chaos_experiment(ChaosSpec(store="efactory", plan="qp-flap", **SMALL))
    d = report.as_dict()
    for field in (
        "store",
        "plan",
        "seed",
        "availability",
        "faults_injected",
        "resilience",
        "violations",
        "weaknesses",
    ):
        assert field in d
    assert 0.0 <= report.availability <= 1.0


def test_trace_records_fault_events():
    report = run_chaos_experiment(
        ChaosSpec(
            store="efactory",
            plan="qp-flap",
            plan_overrides={"probability": 0.08},
            trace=True,
            **SMALL,
        )
    )
    if report.fault_schedule:  # deterministic given the spec
        assert any(k.startswith("fault.") for k in report.trace_counts)


@pytest.mark.parametrize("plan", ["bitrot", "torn-media"])
def test_media_plans_auto_engage_the_scrubber(plan):
    """Media-fault plans run eFactory with the online scrubber armed:
    the report carries its counters and no guarantee is violated (rot
    is repaired by rollback or surfaced as a loud miss, never served)."""
    report = run_chaos_experiment(ChaosSpec(store="efactory", plan=plan, **SMALL))
    assert report.ok, report.violations
    assert set(report.scrub) == {
        "scrubbed", "corrupt_found", "repaired", "unrepairable",
        "reconstructed", "parity_stale", "replica_fetched",
    }
    assert report.scrub["scrubbed"] > 0  # the scrubber really ran


class TestParityChaos:
    def test_parity_flag_arms_the_integrity_tier(self):
        """``--parity`` layers the self-healing tier onto a media plan:
        the report carries repair outcomes and the coverage ledger, rot
        is repaired by reconstruction before rollback is even tried, and
        no key is cleared."""
        report = run_chaos_experiment(
            ChaosSpec(store="efactory", plan="bitrot", parity=True, **SMALL)
        )
        assert report.ok, report.violations
        assert set(report.repair) == {
            "media_faults", "detected", "reconstructed", "replica_fetched",
            "rolled_back", "cleared", "parity_stale", "tree_rejects",
        }
        assert report.repair["media_faults"] > 0
        assert report.repair["detected"] >= 1
        assert report.repair["reconstructed"] >= 1  # parity repair fired
        assert report.repair["cleared"] == 0  # no key was lost
        assert report.integrity["covered"] > 0  # the ledger was active

    def test_parity_off_reports_no_integrity_counters(self):
        report = run_chaos_experiment(
            ChaosSpec(store="efactory", plan="bitrot", **SMALL)
        )
        assert report.ok, report.violations
        assert report.integrity == {}
        assert report.repair["reconstructed"] == 0
