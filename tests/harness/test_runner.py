"""End-to-end experiment runner."""

import pytest

from repro.harness.runner import RunSpec, run_experiment, size_pool_for
from repro.workloads.ycsb import update_only, ycsb_a, ycsb_b, ycsb_f
from tests.conftest import ALL_STORES


def _tiny(store, workload, **kw):
    defaults = dict(
        store=store,
        workload=workload,
        n_clients=2,
        ops_per_client=40,
        warmup_ops=5,
        seed=3,
    )
    defaults.update(kw)
    return RunSpec(**defaults)


class TestRunExperiment:
    @pytest.mark.parametrize("store", ALL_STORES)
    def test_mixed_run_all_stores(self, store):
        spec = _tiny(store, ycsb_a(value_len=256, key_count=64))
        result = run_experiment(spec)
        assert result.errors == 0
        assert result.measured_ops == spec.total_measured_ops
        assert result.throughput_mops > 0
        assert result.latency.count("get") > 0
        assert result.latency.count("put") > 0

    def test_throughput_accounting(self):
        spec = _tiny("ca", update_only(value_len=64, key_count=32))
        result = run_experiment(spec)
        # window covers the measured ops: throughput = ops/window
        assert result.throughput_mops == pytest.approx(
            result.measured_ops / result.window_ns * 1e3
        )
        assert result.window_ns > 0

    def test_deterministic_given_seed(self):
        spec = _tiny("efactory", ycsb_b(value_len=128, key_count=64))
        r1 = run_experiment(spec)
        r2 = run_experiment(spec)
        assert r1.throughput_mops == r2.throughput_mops
        assert r1.latency.median("get") == r2.latency.median("get")

    def test_seed_changes_results(self):
        base = _tiny("efactory", ycsb_b(value_len=128, key_count=64))
        other = RunSpec(**{**base.__dict__, "seed": 99})
        assert (
            run_experiment(base).latency.mean("get")
            != run_experiment(other).latency.mean("get")
        )

    def test_efactory_read_stats_collected(self):
        spec = _tiny("efactory", ycsb_b(value_len=128, key_count=64))
        result = run_experiment(spec)
        # counters include warmup reads; measured reads are a subset
        assert result.pure_reads + result.fallback_reads >= result.latency.count("get")
        assert result.pure_reads > 0

    def test_post_setup_hook_invoked(self):
        called = {}

        def hook(env, setup):
            called["store"] = setup.spec.name

        run_experiment(_tiny("ca", update_only(value_len=64, key_count=16)), post_setup=hook)
        assert called == {"store": "ca"}


class TestYcsbF:
    def test_rmw_recorded_as_one_op(self):
        spec = _tiny("efactory", ycsb_f(value_len=128, key_count=64))
        result = run_experiment(spec)
        assert result.errors == 0
        assert result.latency.count("rmw") > 0
        # an RMW (get + dependent put) is slower than either alone
        assert result.latency.median("rmw") > result.latency.median("get")


class TestPoolSizing:
    def test_size_pool_covers_worst_case(self):
        spec = _tiny("ca", update_only(value_len=4096, key_count=512))
        need = (
            512 + spec.n_clients * (spec.ops_per_client + spec.warmup_ops)
        ) * (64 + 16 + 4096)
        assert size_pool_for(spec) >= need
