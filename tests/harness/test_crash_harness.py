"""The crash-consistency oracle: each store's guarantees hold (or its
documented weaknesses show up) under injected power failures."""

import pytest

from repro.harness.crash import CrashSpec, run_crash_experiment


def _spec(store, **kw):
    defaults = dict(
        store=store,
        n_clients=3,
        key_count=24,
        ops_before_crash=120,
        seed=7,
        evict_probability=0.35,
    )
    defaults.update(kw)
    return CrashSpec(**defaults)


class TestGuarantees:
    @pytest.mark.parametrize(
        "store", ["efactory", "efactory_nohr", "rpc", "saw", "imm", "erda", "forca"]
    )
    def test_no_advertised_guarantee_violated(self, store):
        report = run_crash_experiment(_spec(store))
        assert report.ok, report.violations

    @pytest.mark.parametrize("store", ["rpc", "saw", "imm"])
    def test_durable_stores_lose_nothing_acked(self, store):
        report = run_crash_experiment(_spec(store))
        assert report.durability_losses == 0

    def test_efactory_monotonic_reads(self):
        """§5.3: eFactory "refrains from non-monotonic reads across
        crashes" — anything a GET returned must survive recovery."""
        for seed in (7, 11, 13):
            report = run_crash_experiment(
                _spec("efactory", seed=seed, read_fraction=0.5)
            )
            assert report.monotonicity_losses == 0, seed

    def test_efactory_never_exposes_torn_values(self):
        report = run_crash_experiment(_spec("efactory"))
        assert report.torn_exposed == 0


class TestDocumentedWeaknesses:
    def test_ca_exposes_torn_values(self):
        """The unsafe baseline tears objects across crashes (§3) —
        if this stops happening the crash model broke."""
        torn = sum(
            run_crash_experiment(
                _spec("ca", seed=seed, recover=False)
            ).torn_exposed
            for seed in (7, 11, 13)
        )
        assert torn > 0

    def test_erda_non_monotonic_reads_occur(self):
        """§7: Erda's natural-eviction durability allows reads to travel
        backwards across a crash; eFactory's fix is the contrast."""
        losses = sum(
            run_crash_experiment(
                _spec("erda", seed=seed, read_fraction=0.5, evict_probability=0.2)
            ).monotonicity_losses
            for seed in (7, 11, 13)
        )
        assert losses > 0

    def test_erda_loses_more_with_less_eviction(self):
        low = run_crash_experiment(_spec("erda", evict_probability=0.05))
        high = run_crash_experiment(_spec("erda", evict_probability=0.95))
        assert low.durability_losses >= high.durability_losses


class TestReportShape:
    def test_report_fields(self):
        report = run_crash_experiment(_spec("efactory"))
        assert report.completed_ops >= report.spec.ops_before_crash
        assert len(report.audits) == report.spec.key_count
        assert report.recovery is not None
        assert report.recovery.objects_scanned > 0

    def test_ca_skips_recovery(self):
        report = run_crash_experiment(_spec("ca"))
        assert report.recovery is None

    def test_deterministic(self):
        a = run_crash_experiment(_spec("efactory"))
        b = run_crash_experiment(_spec("efactory"))
        assert a.completed_ops == b.completed_ops
        assert [x.recovered_version for x in a.audits] == [
            x.recovered_version for x in b.audits
        ]
