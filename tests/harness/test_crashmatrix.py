"""The crash-point matrix: deterministic enumeration, coverage of every
boundary class, and clean verdicts on the reference store."""

from repro.core.config import integrity_overrides
from repro.harness.crashmatrix import CrashMatrixSpec, run_crash_matrix


def _spec(**kw):
    defaults = dict(
        store="efactory",
        seed=7,
        ops_per_client=20,
        max_per_site=2,
        recovery_points=1,
        replay=False,
        sites=("nvm.persist", "bg.cleaner.compress"),
    )
    defaults.update(kw)
    return CrashMatrixSpec(**defaults)


def test_matrix_passes_and_covers_every_boundary_class():
    rep = run_crash_matrix(_spec(replay=True))
    assert rep.ok, (rep.violations, rep.non_idempotent, rep.replay_mismatches)
    assert rep.total_points >= 4
    crashed = {r.site for r in rep.results if r.crashed}
    assert "nvm.persist" in crashed
    assert "bg.cleaner.compress" in crashed
    assert "recovery.step" in crashed  # the double-crash points ran
    # the counting pass saw every persist/atomic-store boundary even
    # though we only crashed at two of them
    for site in ("nvm.store64", "nvm.flush", "nvm.persist", "rpc.dispatch"):
        assert rep.site_op_counts.get(site, 0) > 0, site


def test_every_crashed_point_recovers_idempotently():
    rep = run_crash_matrix(_spec())
    for r in rep.results:
        if r.crashed:
            assert r.idempotent, f"{r.phase}:{r.site}#{r.op_index}"
            assert r.recovery is not None
            assert r.digest  # the post-recovery image was fingerprinted


def test_matrix_with_parity_recovers_idempotently():
    """The integrity tier is DRAM-authoritative with a deterministic
    NVM region rebuild on recovery, so arming it must not cost the
    matrix its idempotence or replay identity."""
    rep = run_crash_matrix(
        _spec(replay=True, config_overrides=integrity_overrides())
    )
    assert rep.ok, (rep.violations, rep.non_idempotent, rep.replay_mismatches)
    assert rep.non_idempotent == []
    assert rep.replay_mismatches == []
    assert any(r.crashed for r in rep.results)


def test_matrix_is_deterministic():
    a = run_crash_matrix(_spec())
    b = run_crash_matrix(_spec())
    assert a.site_op_counts == b.site_op_counts
    assert [(r.site, r.op_index, r.crashed, r.digest) for r in a.results] == [
        (r.site, r.op_index, r.crashed, r.digest) for r in b.results
    ]


def test_report_round_trips_to_dict():
    rep = run_crash_matrix(_spec(recovery_points=0))
    d = rep.as_dict()
    assert d["store"] == "efactory"
    assert d["total_points"] == rep.total_points
    assert d["violations"] == []
    assert len(d["points"]) == len(rep.results)
