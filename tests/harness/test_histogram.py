"""Log-bucketed histogram."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.histogram import LogHistogram
from repro.errors import ConfigError


class TestBasics:
    def test_empty(self):
        h = LogHistogram()
        assert h.count == 0
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)
        assert h.render() == "(empty histogram)"

    def test_single_sample(self):
        h = LogHistogram()
        h.record(1500.0)
        assert h.count == 1
        assert h.mean == 1500.0
        assert h.percentile(50) == 1500.0  # clamped to min/max seen
        assert h.percentile(0) == 1500.0

    def test_mean_exact(self):
        h = LogHistogram()
        for v in (100.0, 200.0, 300.0):
            h.record(v)
        assert h.mean == 200.0

    def test_percentile_accuracy(self):
        """Quantile error bounded by bucket width (~4.4% at 16/octave)."""
        h = LogHistogram(sub_buckets=16)
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=8.0, sigma=1.0, size=20_000)
        h.record_many(samples)
        for q in (50, 90, 99):
            exact = float(np.percentile(samples, q))
            approx = h.percentile(q)
            assert abs(approx - exact) / exact < 0.06, q

    def test_clamping(self):
        h = LogHistogram(min_ns=100, max_ns=1000)
        h.record(1.0)
        h.record(1e9)
        assert h.count == 2
        assert h.min_seen == 1.0 and h.max_seen == 1e9

    def test_negative_rejected(self):
        h = LogHistogram()
        with pytest.raises(ConfigError):
            h.record(-1.0)
        with pytest.raises(ConfigError):
            h.record_many([1.0, -2.0])

    def test_bad_geometry(self):
        with pytest.raises(ConfigError):
            LogHistogram(min_ns=0)
        with pytest.raises(ConfigError):
            LogHistogram(min_ns=10, max_ns=5)
        with pytest.raises(ConfigError):
            LogHistogram(sub_buckets=0)

    def test_percentile_range_checked(self):
        with pytest.raises(ConfigError):
            LogHistogram().percentile(101)


class TestMerge:
    def test_merge_equals_combined_population(self):
        rng = np.random.default_rng(1)
        a_samples = rng.exponential(1000, 5000)
        b_samples = rng.exponential(5000, 5000)
        a, b, combined = LogHistogram(), LogHistogram(), LogHistogram()
        a.record_many(a_samples)
        b.record_many(b_samples)
        combined.record_many(np.concatenate([a_samples, b_samples]))
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.percentile(99) == pytest.approx(combined.percentile(99))

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            LogHistogram(sub_buckets=8).merge(LogHistogram(sub_buckets=16))


class TestRender:
    def test_render_contains_counts(self):
        h = LogHistogram()
        h.record_many([1000.0] * 10)
        out = h.render()
        assert "#" in out and "10" in out


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(1.0, 1e9), min_size=1, max_size=200))
def test_percentiles_monotone_property(values):
    h = LogHistogram()
    h.record_many(values)
    qs = [h.percentile(q) for q in (1, 25, 50, 75, 99)]
    assert qs == sorted(qs)
    assert h.min_seen <= qs[0] and qs[-1] <= h.max_seen
