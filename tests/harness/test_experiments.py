"""Micro-scale smokes of the canned figure experiments (the benchmarks
run them at full scale; these just pin the data shapes and renderers)."""

import pytest

from repro.harness.experiments import (
    crash_consistency,
    fig1_write_latency,
    fig2_get_breakdown,
    fig9_throughput,
    fig10_scalability,
    fig11_log_cleaning,
    render_crash,
    render_fig1,
    render_fig2,
    render_fig9,
    render_fig10,
    render_fig11,
)


def test_fig1_shape_and_render():
    data = fig1_write_latency(sizes=(64,), stores=("ca", "rpc"), ops=40)
    assert set(data) == {"ca", "rpc"}
    p50, p99 = data["ca"][64]
    assert 0 < p50 <= p99
    out = render_fig1(data)
    assert "Figure 1" in out and "CA w/o persistence" in out


def test_fig2_shape_and_render():
    data = fig2_get_breakdown(sizes=(1024,), stores=("erda",), ops=40)
    row = data["erda"][1024]
    assert row["total_ns"] == pytest.approx(
        row["crc_ns"] + row["other_ns"]
    )
    assert 0 < row["crc_share"] < 1
    assert "crc" in render_fig2(data)


def test_fig9_shape_and_render():
    data = fig9_throughput(
        "YCSB-B",
        sizes=(256,),
        stores=("efactory", "erda"),
        n_clients=2,
        ops=60,
        key_count=64,
    )
    assert data["efactory"][256] > 0
    out = render_fig9("YCSB-B", data)
    assert "256B" in out and "eFactory" in out


def test_fig10_shape_and_render():
    data = fig10_scalability(
        "update-only",
        client_counts=(1, 2),
        stores=("ca",),
        ops=50,
        key_count=64,
    )
    # more clients -> more throughput while unsaturated
    assert data["ca"][2] > data["ca"][1]
    assert "1 cli" in render_fig10("update-only", data)


def test_fig11_shape_and_render():
    data = fig11_log_cleaning(
        workload_names=("YCSB-A",), ops=80, key_count=64, n_clients=2
    )
    row = data["YCSB-A"]
    assert row["normal_ns"] > 0 and row["cleaning_ns"] > 0
    assert "overhead" in render_fig11(data)


def test_crash_consistency_shape_and_render():
    data = crash_consistency(stores=("efactory",), seeds=(7,))
    assert len(data["efactory"]) == 1
    assert data["efactory"][0].ok
    assert "eFactory" in render_crash(data)
