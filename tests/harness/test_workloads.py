"""Workload generation: distributions, keys, verifiable values."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads.keyspace import make_key, make_value, parse_value
from repro.workloads.ycsb import (
    WORKLOADS,
    update_only,
    ycsb_a,
    ycsb_b,
    ycsb_c,
    ycsb_d,
    ycsb_e,
    ycsb_f,
)
from repro.workloads.zipf import (
    RotatingHotSet,
    ScrambledZipfian,
    SkewedLatest,
    UniformGenerator,
    ZipfianGenerator,
    zeta,
)


class TestZipf:
    def test_zeta_known_values(self):
        assert zeta(1, 0.99) == 1.0
        assert zeta(2, 0.5) == pytest.approx(1 + 2 ** -0.5)

    def test_ranks_in_range(self):
        gen = ZipfianGenerator(100)
        rng = np.random.default_rng(0)
        ranks = gen.sample(rng, size=10_000)
        assert ranks.min() >= 0 and ranks.max() < 100

    def test_skew_head_is_hot(self):
        """Rank 0 must dominate: the long-tailed property the paper's
        read-write races depend on."""
        gen = ZipfianGenerator(1000, theta=0.99)
        rng = np.random.default_rng(1)
        ranks = gen.sample(rng, size=50_000)
        share0 = np.mean(ranks == 0)
        share_tail = np.mean(ranks >= 500)
        assert share0 > 0.10  # theory: 1/zeta(1000, .99) ~= 0.13
        assert share0 > share_tail

    def test_monotone_popularity(self):
        gen = ZipfianGenerator(50, theta=0.9)
        rng = np.random.default_rng(2)
        ranks = gen.sample(rng, size=100_000)
        counts = np.bincount(ranks, minlength=50)
        # popularity decreases from head to tail (allow sampling noise
        # by comparing coarse buckets)
        assert counts[:5].sum() > counts[5:15].sum() > counts[30:50].sum()

    def test_scalar_sampling(self):
        gen = ZipfianGenerator(10)
        rng = np.random.default_rng(3)
        r = gen.sample(rng)
        assert isinstance(r, int) and 0 <= r < 10

    def test_scrambled_spreads_hot_keys(self):
        gen = ScrambledZipfian(1000)
        rng = np.random.default_rng(4)
        keys = np.asarray(gen.sample(rng, size=20_000))
        assert keys.min() >= 0 and keys.max() < 1000
        # the hottest key is no longer id 0
        hot = np.bincount(keys, minlength=1000).argmax()
        counts = np.bincount(keys, minlength=1000)
        assert counts[hot] > 0.1 * keys.size

    def test_scrambled_deterministic(self):
        a = ScrambledZipfian(100).sample(np.random.default_rng(5), size=50)
        b = ScrambledZipfian(100).sample(np.random.default_rng(5), size=50)
        assert np.array_equal(a, b)

    def test_uniform(self):
        gen = UniformGenerator(10)
        rng = np.random.default_rng(6)
        keys = gen.sample(rng, size=10_000)
        counts = np.bincount(keys, minlength=10)
        assert counts.min() > 800  # roughly flat

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianGenerator(0)
        with pytest.raises(WorkloadError):
            ZipfianGenerator(10, theta=1.5)
        with pytest.raises(WorkloadError):
            UniformGenerator(-1)


class TestSkewedLatest:
    def test_latest_keys_are_hot(self):
        gen = SkewedLatest(1000, theta=0.99)
        rng = np.random.default_rng(10)
        keys = np.asarray(gen.sample(rng, size=50_000))
        assert keys.min() >= 0 and keys.max() < 1000
        # the skew anchors at the end of the key space
        assert np.mean(keys == 999) > 0.10
        assert np.mean(keys >= 900) > np.mean(keys < 100)

    def test_scalar(self):
        k = SkewedLatest(10).sample(np.random.default_rng(11))
        assert isinstance(k, int) and 0 <= k < 10


class TestRotatingHotSet:
    def test_seeded_determinism(self):
        a = RotatingHotSet(512, rotate_every=100).sample(
            np.random.default_rng(12), size=1000
        )
        b = RotatingHotSet(512, rotate_every=100).sample(
            np.random.default_rng(12), size=1000
        )
        assert np.array_equal(a, b)

    def test_bulk_equals_incremental(self):
        """Bulk sampling across epoch boundaries must match drawing one
        key at a time (each draw salted by the epoch it falls in)."""
        rng_a = np.random.default_rng(13)
        rng_b = np.random.default_rng(13)
        gen_a = RotatingHotSet(256, rotate_every=7)
        gen_b = RotatingHotSet(256, rotate_every=7)
        bulk = gen_a.sample(rng_a, size=50)
        singles = [gen_b.sample(rng_b) for _ in range(50)]
        assert bulk.tolist() == singles

    def test_rotation_moves_the_hot_set(self):
        gen = RotatingHotSet(4096, rotate_every=1000)
        hot0 = set(gen.hot_keys(top=20, epoch=0))
        hot1 = set(gen.hot_keys(top=20, epoch=1))
        assert hot0 != hot1
        # re-salting is a scatter, not a shift: overlap is incidental
        assert len(hot0 & hot1) < 10

    def test_same_epoch_is_stable(self):
        gen = RotatingHotSet(4096, rotate_every=1000)
        assert gen.hot_keys(top=10, epoch=3) == gen.hot_keys(top=10, epoch=3)

    def test_epoch_advances_with_draws(self):
        gen = RotatingHotSet(128, rotate_every=50)
        rng = np.random.default_rng(14)
        assert gen.epoch == 0
        gen.sample(rng, size=49)
        assert gen.epoch == 0
        gen.sample(rng)
        assert gen.epoch == 1

    def test_hot_keys_dominate_within_epoch(self):
        gen = RotatingHotSet(1024, rotate_every=100_000)
        rng = np.random.default_rng(15)
        keys = gen.sample(rng, size=50_000)
        hot = gen.hot_keys(top=10, epoch=0)
        share = np.isin(keys, hot).mean()
        assert share > 0.3  # zipf(0.99) mass of the top-10 ranks

    def test_validation(self):
        with pytest.raises(WorkloadError):
            RotatingHotSet(100, rotate_every=0)


class TestKeyspace:
    def test_make_key_fixed_width(self):
        assert make_key(0) == b"user000000000000"
        assert make_key(42, key_len=32) == b"user" + b"0" * 26 + b"42"
        assert len(make_key(5, 20)) == 20

    def test_key_overflow_rejected(self):
        with pytest.raises(WorkloadError):
            make_key(10**13, key_len=16)
        with pytest.raises(WorkloadError):
            make_key(1, key_len=8)

    def test_value_roundtrip(self):
        v = make_value(7, 3, 64)
        assert len(v) == 64
        assert parse_value(v) == (7, 3)

    def test_minimum_value_size(self):
        assert parse_value(make_value(1, 1, 16)) == (1, 1)
        with pytest.raises(WorkloadError):
            make_value(1, 1, 8)

    def test_torn_value_detected(self):
        v = bytearray(make_value(7, 3, 128))
        v[64] ^= 0xFF
        assert parse_value(bytes(v)) is None

    def test_wrong_header_detected(self):
        v = bytearray(make_value(7, 3, 64))
        v[0] ^= 0x01  # key_id now 6: pattern no longer matches
        assert parse_value(bytes(v)) is None

    def test_short_value_is_none(self):
        assert parse_value(b"short") is None

    @given(
        kid=st.integers(0, 2**32),
        ver=st.integers(0, 2**32),
        vlen=st.integers(16, 512),
    )
    @settings(max_examples=50)
    def test_roundtrip_property(self, kid, ver, vlen):
        assert parse_value(make_value(kid, ver, vlen)) == (kid, ver)

    @given(
        kid=st.integers(0, 100),
        ver=st.integers(0, 100),
        vlen=st.integers(17, 128),
        pos=st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_any_corruption_detected(self, kid, ver, vlen, pos):
        v = bytearray(make_value(kid, ver, vlen))
        v[pos % vlen] ^= 0x5A
        assert parse_value(bytes(v)) is None


class TestYcsbSpecs:
    def test_canonical_mixes(self):
        assert ycsb_c().read_fraction == 1.0
        assert ycsb_b().read_fraction == 0.95
        assert ycsb_a().read_fraction == 0.5
        assert update_only().read_fraction == 0.0
        assert ycsb_f().rmw_fraction == 0.5
        assert set(WORKLOADS) == {
            "YCSB-C", "YCSB-B", "YCSB-A", "YCSB-D", "YCSB-E", "YCSB-F",
            "update-only",
        }
        # sweeps iterate WORKLOADS in order; the original five must keep
        # their positions with D/E appended after them
        assert list(WORKLOADS)[:5] == [
            "YCSB-C", "YCSB-B", "YCSB-A", "YCSB-F", "update-only"
        ]

    def test_client_stream_mix(self):
        spec = ycsb_b(key_count=100)
        rng = np.random.default_rng(0)
        ops = spec.client_stream(rng, 5000)
        reads = sum(1 for op in ops if op.kind == "get")
        assert 0.93 < reads / 5000 < 0.97
        assert all(0 <= op.key_id < 100 for op in ops)

    def test_stream_deterministic(self):
        spec = ycsb_a(key_count=64)
        a = spec.client_stream(np.random.default_rng(9), 100)
        b = spec.client_stream(np.random.default_rng(9), 100)
        assert a == b

    def test_uniform_distribution_option(self):
        spec = ycsb_c(key_count=10, distribution="uniform")
        ops = spec.client_stream(np.random.default_rng(1), 1000)
        counts = np.bincount([op.key_id for op in ops], minlength=10)
        assert counts.min() > 50

    def test_ycsb_f_stream_mix(self):
        spec = ycsb_f(key_count=64)
        ops = spec.client_stream(np.random.default_rng(2), 4000)
        from collections import Counter

        kinds = Counter(op.kind for op in ops)
        assert kinds["put"] == 0
        assert 0.45 < kinds["rmw"] / 4000 < 0.55
        assert 0.45 < kinds["get"] / 4000 < 0.55

    def test_mix_ratio_convergence(self):
        """Over 100k draws every mix converges to its nominal op ratios
        (the load engine's per-tenant accounting depends on this)."""
        rng = np.random.default_rng(20)
        for factory, fractions in [
            (ycsb_a, {"get": 0.50, "put": 0.50}),
            (ycsb_b, {"get": 0.95, "put": 0.05}),
            (ycsb_c, {"get": 1.0}),
            (ycsb_f, {"get": 0.50, "rmw": 0.50}),
            (update_only, {"put": 1.0}),
        ]:
            spec = factory(key_count=1024)
            ops = spec.client_stream(rng, 100_000)
            assert len(ops) == 100_000
            from collections import Counter

            kinds = Counter(op.kind for op in ops)
            for kind, frac in fractions.items():
                assert abs(kinds[kind] / 100_000 - frac) < 0.01, (
                    spec.name, kind,
                )

    def test_ycsb_d_reads_latest(self):
        spec = ycsb_d(key_count=1000)
        ops = spec.client_stream(np.random.default_rng(21), 20_000)
        gets = np.array([op.key_id for op in ops if op.kind == "get"])
        assert gets.size > 18_000  # 95% reads
        # "latest" skew: the high end of the id space dominates
        assert np.mean(gets >= 900) > np.mean(gets < 100)
        assert np.mean(gets == 999) > 0.10

    def test_ycsb_e_scan_bursts(self):
        spec = ycsb_e(key_count=512, max_scan_len=8)
        n_ops = 20_000
        ops = spec.client_stream(np.random.default_rng(22), n_ops)
        # scans expand but the stream is truncated at exactly the budget
        assert len(ops) == n_ops
        kinds = {op.kind for op in ops}
        assert kinds == {"get", "put"}  # scans degrade to point GETs
        # ~5% puts of *application* ops; after expansion the put share
        # of store ops shrinks by the mean scan length
        put_frac = sum(1 for op in ops if op.kind == "put") / n_ops
        assert 0.002 < put_frac < 0.04
        # expansion produces sequential runs: many successors are +1
        ids = np.array([op.key_id for op in ops])
        seq = np.mean((ids[1:] - ids[:-1]) % 512 == 1)
        assert seq > 0.5

    def test_scan_free_stream_unchanged_by_scan_fields(self):
        """Scan support must not disturb the rng draw sequence of
        scan-free workloads (fig1/fig2 bit-identity)."""
        a = ycsb_b(key_count=64).client_stream(np.random.default_rng(23), 500)
        b = ycsb_b(key_count=64, max_scan_len=99).client_stream(
            np.random.default_rng(23), 500
        )
        assert a == b

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ycsb_a(key_count=0)
        with pytest.raises(WorkloadError):
            ycsb_a(value_len=8)
        with pytest.raises(WorkloadError):
            ycsb_c(rmw_fraction=0.5)  # 100% reads leave no rmw budget
        with pytest.raises(WorkloadError):
            ycsb_e(max_scan_len=0)
        with pytest.raises(WorkloadError):
            # scan budget exceeded: 95% reads leave only 5%
            ycsb_b(scan_fraction=0.5)
