"""Analytic fast path: eligibility/fallback matrix, exact equivalence
with the event path, and determinism under the wheel scheduler."""

import numpy as np
import pytest

from repro.errors import QPError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.harness.chaos import ChaosSpec, run_chaos_experiment
from repro.harness.kernelbench import _bench_verbs, run_equivalence_check
from repro.harness.runner import RunSpec, run_experiment
from repro.nvm.device import NVMDevice
from repro.rdma.cq import CompletionQueue, post_write
from repro.rdma.fabric import Fabric
from repro.sim.heapkernel import HeapEnvironment
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.ycsb import update_only, ycsb_c


@pytest.fixture
def net(env):
    fabric = Fabric(env)
    server = fabric.create_node("server", device=NVMDevice(env, 1 << 20))
    client = fabric.create_node("client")
    ep = fabric.connect(client, server)
    mr = server.register_memory(0, 1 << 20)
    return fabric, server, client, ep, mr


def run(env, gen):
    return env.run(env.process(gen))


class TestFallbackMatrix:
    def test_uncontended_write_takes_fast_path(self, env, net):
        fabric, _server, _client, ep, mr = net

        def proc():
            yield from ep.write(mr.rkey, 0, b"x" * 64)

        run(env, proc())
        assert fabric.fastpath_ops == 1
        assert ep.fastpath_ops == 1
        assert fabric.fallback_ops == 0

    def test_disabled_flag_forces_event_path(self, env, net):
        fabric, _server, _client, ep, mr = net
        fabric.fastpath = False

        def proc():
            yield from ep.write(mr.rkey, 0, b"x" * 64)

        run(env, proc())
        assert fabric.fastpath_ops == 0

    def test_armed_injector_forces_event_path(self, env, net):
        fabric, _server, _client, ep, mr = net
        # Even an *empty* plan must force the event path: injectors make
        # timing observable (rule indices count verb visits).
        fabric.injector = FaultInjector(env, FaultPlan("noop"), RngRegistry(1))

        def proc():
            yield from ep.write(mr.rkey, 0, b"x" * 64)
            _ = yield from ep.read(mr.rkey, 0, 64)
            yield from ep.cas(mr.rkey, 0, b"\0" * 8, b"\1" * 8)

        run(env, proc())
        assert fabric.fastpath_ops == 0
        assert not fabric.fastpath_ok()

    def test_qp_error_state_fails_without_fast_path(self, env, net):
        fabric, _server, _client, ep, mr = net
        ep._error = True

        def proc():
            yield from ep.write(mr.rkey, 0, b"x" * 64)

        with pytest.raises(QPError):
            run(env, proc())
        assert fabric.fastpath_ops == 0

    def test_contended_engine_falls_back(self, env, net):
        fabric, _server, _client, ep, mr = net

        def writer(off):
            yield from ep.write(mr.rkey, off, b"y" * 4096)

        env.process(writer(0))
        env.process(writer(8192))
        env.run()
        # First write reserves the engine analytically; the overlapping
        # second write must queue on the full event path.
        assert fabric.fastpath_ops >= 1
        assert fabric.fallback_ops >= 1

    def test_contended_timing_equals_event_path(self, env, net):
        """Mixed fast/fallback execution completes at the same instants
        as a pure event-path run."""

        def drive(fastpath):
            e = Environment()
            fab = Fabric(e)
            fab.fastpath = fastpath
            server = fab.create_node("s", device=NVMDevice(e, 1 << 20))
            client = fab.create_node("c")
            endpoint = fab.connect(client, server)
            mr = server.register_memory(0, 1 << 20)
            done = []

            def writer(off, size):
                yield from endpoint.write(mr.rkey, off, b"z" * size)
                done.append((off, e.now))

            for k in range(6):
                e.process(writer(k * 8192, 2048 + 512 * k))
            e.run()
            return done

        assert drive(True) == drive(False)

    def test_posted_write_async_fallback_on_bad_rkey(self, env, net):
        _fabric, _server, _client, ep, mr = net
        cq = CompletionQueue(env)

        def proc():
            post_write(ep, cq, 999999, 0, b"x")  # unknown rkey
            (wc,) = yield from cq.wait(1)
            return wc

        wc = run(env, proc())
        assert not wc.ok


class TestExactEquivalence:
    def test_fig1_fig2_bit_identical(self):
        """Fast path vs event path: identical ns on the fig1/fig2 cells
        (subset here; the full sweep runs in CI via bench-kernel)."""
        report = run_equivalence_check(ops=12)
        assert report["identical"]
        assert report["fastpath_engaged"]

    def test_macro_cell_same_ns_fewer_events(self):
        """The posted-WRITE macro pattern simulates identical time with
        less than half the events per op."""
        base = _bench_verbs(HeapEnvironment, 300, fastpath=False)
        fast = _bench_verbs(Environment, 300, fastpath=True)
        assert fast["sim_ns"] == base["sim_ns"]
        assert fast["fastpath_ops"] == 300
        assert fast["events_per_op"] < base["events_per_op"] / 2


class TestDeterminism:
    @pytest.mark.parametrize(
        "store,workload",
        [("saw", update_only), ("erda", ycsb_c)],
    )
    def test_same_spec_same_latencies(self, store, workload):
        spec = RunSpec(
            store=store,
            workload=workload(value_len=64, key_count=32),
            n_clients=2,
            ops_per_client=15,
            warmup_ops=3,
            seed=9,
        )
        a = run_experiment(spec)
        b = run_experiment(spec)
        assert a.window_ns == b.window_ns
        for kind in a.latency.kinds():
            assert np.array_equal(a.latency.array(kind), b.latency.array(kind))

    def test_seeded_chaos_plan_repeats_exactly(self):
        spec = ChaosSpec(
            store="efactory",
            plan="qp-flap",
            seed=31,
            n_clients=2,
            ops_per_client=25,
            key_count=12,
            value_len=64,
        )
        a = run_chaos_experiment(spec)
        b = run_chaos_experiment(spec)
        assert a.fault_schedule == b.fault_schedule
        assert a.wall_ns == b.wall_ns
        assert a.completed_ops == b.completed_ops
        assert a.resilience == b.resilience
