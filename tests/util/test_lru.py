"""The bounded LRU map shared by the location cache and skip map."""

from repro.util import LruMap


class TestBasics:
    def test_put_get_roundtrip(self):
        m = LruMap(4)
        m.put("a", 1)
        assert m.get("a") == 1
        assert m.peek("a") == 1
        assert len(m) == 1
        assert "a" in m

    def test_miss_returns_default(self):
        m = LruMap(4)
        assert m.get("nope") is None
        assert m.get("nope", 7) == 7
        assert m.peek("nope", 7) == 7

    def test_pop_and_clear(self):
        m = LruMap(4)
        m.put("a", 1)
        assert m.pop("a") == 1
        assert m.pop("a", "gone") == "gone"
        m.put("b", 2)
        m.clear()
        assert len(m) == 0


class TestEviction:
    def test_capacity_evicts_lru(self):
        m = LruMap(2)
        m.put("a", 1)
        m.put("b", 2)
        evicted = m.put("c", 3)
        assert evicted == ("a", 1)
        assert "a" not in m and "b" in m and "c" in m

    def test_get_refreshes_recency(self):
        m = LruMap(2)
        m.put("a", 1)
        m.put("b", 2)
        m.get("a")  # a is now most-recent
        evicted = m.put("c", 3)
        assert evicted == ("b", 2)

    def test_peek_does_not_refresh(self):
        m = LruMap(2)
        m.put("a", 1)
        m.put("b", 2)
        m.peek("a")
        evicted = m.put("c", 3)
        assert evicted == ("a", 1)

    def test_reinsert_refreshes_without_eviction(self):
        m = LruMap(2)
        m.put("a", 1)
        m.put("b", 2)
        assert m.put("a", 10) is None  # refresh, not insert
        assert m.get("a") == 10
        assert len(m) == 2


class TestDisabled:
    def test_zero_capacity_is_stateless(self):
        m = LruMap(0)
        assert m.put("a", 1) is None
        assert m.get("a") is None
        assert len(m) == 0

    def test_negative_capacity_is_stateless(self):
        m = LruMap(-3)
        m.put("a", 1)
        assert "a" not in m


class TestSweeps:
    def test_drop_where(self):
        m = LruMap(8)
        for i in range(6):
            m.put(i, i % 2)
        dropped = m.drop_where(lambda _k, v: v == 1)
        assert dropped == 3
        assert sorted(m) == [0, 2, 4]

    def test_evict_expired_scans_lru_prefix_only(self):
        m = LruMap(8)
        for i in range(8):
            m.put(i, "dead" if i < 6 else "live")
        dropped = m.evict_expired(lambda _k, v: v == "dead", scan_limit=4)
        assert dropped == 4
        assert len(m) == 4  # 2 dead stragglers + 2 live remain

    def test_evict_expired_keeps_live_entries(self):
        m = LruMap(8)
        m.put("x", "live")
        assert m.evict_expired(lambda _k, v: v == "dead") == 0
        assert "x" in m
