"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "eFactory" in out and "CA w/o persistence" in out
    assert "durable PUT" in out


def test_run_single_store(capsys, tmp_path):
    path = tmp_path / "run.json"
    rc = main(
        [
            "run",
            "--store",
            "ca",
            "--workload",
            "YCSB-A",
            "--value-size",
            "128",
            "--key-count",
            "64",
            "--clients",
            "2",
            "--ops",
            "60",
            "--seeds",
            "1",
            "2",
            "--json",
            str(path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "throughput" in out
    payload = json.loads(path.read_text())
    assert payload["store"] == "ca"
    assert payload["throughput_mops"] > 0
    assert payload["errors"] == 0


def test_run_histogram_flag(capsys):
    rc = main(
        [
            "run", "--store", "ca", "--workload", "YCSB-C",
            "--value-size", "64", "--key-count", "32",
            "--clients", "1", "--ops", "40", "--histogram",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "latency distribution" in out and "#" in out


def test_fig1(capsys, tmp_path):
    path = tmp_path / "fig1.json"
    rc = main(["fig", "1", "--sizes", "64", "--ops", "60", "--json", str(path)])
    assert rc == 0
    assert "Figure 1" in capsys.readouterr().out
    payload = json.loads(path.read_text())
    assert "ca" in payload and "64" in payload["ca"]


def test_fig9_with_workload(capsys):
    rc = main(
        ["fig", "9", "--workload", "update-only", "--sizes", "64", "--ops", "50"]
    )
    assert rc == 0
    assert "update-only" in capsys.readouterr().out


def test_crash(capsys, tmp_path):
    path = tmp_path / "crash.json"
    rc = main(
        ["crash", "--store", "efactory", "--seeds", "7", "--json", str(path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "crash audit" in out
    payload = json.loads(path.read_text())
    assert payload[0]["violations"] == []


def test_chaos(capsys, tmp_path):
    path = tmp_path / "chaos.json"
    rc = main(
        [
            "chaos", "--store", "efactory", "--plan", "qp-flap",
            "--seeds", "7", "--ops", "30", "--strict",
            "--json", str(path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "chaos audit" in out and "ok" in out
    payload = json.loads(path.read_text())
    assert payload[0]["plan"] == "qp-flap"
    assert payload[0]["violations"] == []


def test_chaos_unknown_plan_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(
            ["chaos", "--store", "efactory", "--plan", "bogus"]
        )


def test_unknown_store_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--store", "bogus"])


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_crashmatrix(capsys, tmp_path):
    path = tmp_path / "matrix.json"
    rc = main(
        [
            "crashmatrix", "--store", "efactory", "--max-per-site", "1",
            "--recovery-points", "1", "--sites", "nvm.persist",
            "--no-replay", "--strict", "--json", str(path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "crash-point matrix" in out
    assert "0 violation(s)" in out
    payload = json.loads(path.read_text())
    assert payload["violations"] == []
    assert payload["non_idempotent"] == []
    assert payload["total_points"] >= 1
