"""Live partition migration: copy, fence, delta, flip, abort."""

from __future__ import annotations

from repro.kv.hashtable import key_fingerprint, partition_of_fp
from repro.kv.objects import FLAG_TRANS

from tests.cluster.conftest import run1, small_cluster


def _keys_of_partition(cluster, count=60, want=8):
    """First partition with at least ``want`` of the generated keys."""
    nparts = cluster.store_config.num_partitions
    by_part: dict[int, list[bytes]] = {}
    for i in range(count):
        key = b"mig-key-%03d" % i
        by_part.setdefault(
            partition_of_fp(key_fingerprint(key), nparts), []
        ).append(key)
    part = max(by_part, key=lambda p: len(by_part[p]))
    assert len(by_part[part]) >= want
    return part, by_part[part], [k for p, ks in by_part.items() for k in ks]


def test_migrate_moves_keys_and_flips_ownership(env):
    setup = small_cluster(env, nodes=3, replication=2)
    client = setup.client(0)
    cluster = setup.cluster
    part, part_keys, all_keys = _keys_of_partition(cluster)
    src = cluster.router.primary(part)
    dst = next(i for i in range(3) if i != src)

    def body():
        for k in all_keys:
            yield from client.put(k, k * 4)
        stats = yield from cluster.migrate(part, dst)
        assert not stats["aborted"], stats
        assert stats["moved"] >= len(part_keys)
        # every key still readable, now through the new primary
        for k in all_keys:
            got = yield from client.get(k)
            assert got == k * 4, k
        return stats

    stats = run1(env, body())
    assert cluster.router.primary(part) == dst
    assert cluster.migrations == 1
    # the destination indexed every migrated key locally
    dpart = cluster.nodes[dst].server.partitions[part]
    for k in part_keys:
        assert dpart.table.find(key_fingerprint(k)) is not None
    # copied source versions carry the transfer flag (cleaner protocol)
    spart = cluster.nodes[src].server.partitions[part]
    flagged = 0
    for entry_off, entry in spart.table.iter_entries():
        slot = spart.table.read_cur(entry_off)
        if slot is None:
            continue
        from repro.baselines.partition import ObjectLocation

        img = spart.read_object(
            ObjectLocation(pool=slot.pool, offset=slot.offset, size=slot.size)
        )
        if img.well_formed and img.flags & FLAG_TRANS:
            flagged += 1
    assert flagged >= len(part_keys)
    assert stats["duration_ns"] > 0
    setup.stop()


def test_migrated_partition_accepts_writes_and_replicates(env):
    """After the flip the destination is a full primary: writes land,
    replicate to the re-seeded backups, and survive the source."""
    setup = small_cluster(env, nodes=3, replication=2)
    client = setup.client(0)
    cluster = setup.cluster
    part, part_keys, _ = _keys_of_partition(cluster)
    src = cluster.router.primary(part)
    dst = next(i for i in range(3) if i != src)

    def body():
        for k in part_keys:
            yield from client.put(k, k * 2)
        stats = yield from cluster.migrate(part, dst)
        assert not stats["aborted"], stats
        for k in part_keys:
            yield from client.put(k, k * 9)
        # the old primary's copy is now irrelevant: kill it
        cluster.kill_node(src)
        deadline = env.now + 20_000_000.0
        while src not in cluster._dead_handled and env.now < deadline:
            yield env.timeout(50_000.0)
        yield from cluster.await_stable(timeout_ns=20_000_000.0)
        for k in part_keys:
            got = yield from client.get(k)
            assert got == k * 9, k

    run1(env, body())
    assert cluster.router.primary(part) == dst
    setup.stop()


def test_migration_to_dead_node_aborts(env):
    setup = small_cluster(env, nodes=3, replication=2)
    client = setup.client(0)
    cluster = setup.cluster
    part, part_keys, _ = _keys_of_partition(cluster)
    dst = next(
        i for i in range(3) if i != cluster.router.primary(part)
    )

    def body():
        for k in part_keys[:4]:
            yield from client.put(k, k)
        cluster.nodes[dst].alive = False  # not yet detected
        stats = yield from cluster.migrate(part, dst)
        assert stats["aborted"]
        cluster.nodes[dst].alive = True
        # the route rolled back: source still serves
        for k in part_keys[:4]:
            got = yield from client.get(k)
            assert got == k, k

    run1(env, body())
    assert cluster.migrations_aborted == 1
    assert cluster.migrations == 0
    route = cluster.router.routes[part]
    assert route.state == "normal"
    assert route.migrating_to is None
    setup.stop()


def test_migration_source_unfenced_after_abort(env):
    setup = small_cluster(env, nodes=3, replication=2)
    cluster = setup.cluster
    part, part_keys, _ = _keys_of_partition(cluster)
    src = cluster.router.primary(part)
    spart = cluster.nodes[src].server.partitions[part]

    def body():
        yield from setup.client(0).put(part_keys[0], b"pre")
        cluster.nodes[2].alive = False
        if cluster.router.primary(part) == 2:
            return
        stats = yield from cluster.migrate(part, 2)
        assert stats["aborted"]

    run1(env, body())
    assert spart.fenced is False
    setup.stop()
