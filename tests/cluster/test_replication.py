"""Log shipping and the replication watermark ack gate."""

from __future__ import annotations

import pytest

from repro.cluster.router import ClusterRouter
from repro.errors import ConfigError
from repro.kv.hashtable import key_fingerprint, partition_of_fp

from tests.cluster.conftest import run1, small_cluster


def _primary_backup(setup, part):
    router = setup.cluster.router
    return router.primary(part), router.backups(part)[0]


def test_put_get_roundtrip_under_replication(env):
    setup = small_cluster(env, nodes=3, replication=2)
    client = setup.client(0)

    def body():
        for i in range(16):
            yield from client.put(b"key%d" % i, b"v%d" % i * 8)
        out = []
        for i in range(16):
            out.append((yield from client.get(b"key%d" % i)))
        return out

    values = run1(env, body())
    assert values == [b"v%d" % i * 8 for i in range(16)]
    setup.stop()


def test_acked_put_is_covered_on_backup(env):
    """After an acked PUT the shipped watermark covers the record and
    the backup's pool bytes are identical to the primary's prefix."""
    setup = small_cluster(env, nodes=3, replication=2)
    client = setup.client(0)
    cluster = setup.cluster
    nparts = cluster.store_config.num_partitions
    keys = [b"repl-%02d" % i for i in range(12)]

    run1(env, client.put_many([(k, k * 6) for k in keys]))

    for key in keys:
        part = partition_of_fp(key_fingerprint(key), nparts)
        pid, bid = _primary_backup(setup, part)
        shipper = cluster.nodes[pid].shippers[part]
        ppart = cluster.nodes[pid].server.partitions[part]
        bpart = cluster.nodes[bid].server.partitions[part]
        pool = ppart.pools[shipper.pool_id]
        # Every record the primary acked is inside the watermark...
        assert shipper.covered(shipper.pool_id, shipper.shipped_end)
        # ...and the shipped prefix is byte-identical on the backup
        # (identical offsets: that is what makes promotion plain
        # recovery).
        end = shipper.shipped_end
        assert bytes(pool.read(0, end)) == bytes(
            bpart.pools[shipper.pool_id].read(0, end)
        )
    setup.stop()


def test_backup_index_stays_empty_until_promotion(env):
    """Backups apply raw log bytes only — their table segments must not
    gain entries from shipping (promotion seeds them explicitly)."""
    setup = small_cluster(env, nodes=2, replication=2)
    client = setup.client(0)
    run1(env, client.put_many([(b"idx-%d" % i, b"x" * 32) for i in range(8)]))
    cluster = setup.cluster
    for part_id in range(cluster.store_config.num_partitions):
        bid = cluster.router.backups(part_id)[0]
        bpart = cluster.nodes[bid].server.partitions[part_id]
        assert list(bpart.table.iter_entries()) == []
    setup.stop()


def test_replication_factor_one_has_no_shippers(env):
    setup = small_cluster(env, nodes=3, replication=1)
    client = setup.client(0)
    run1(env, client.put_many([(b"solo-%d" % i, b"y" * 16) for i in range(6)]))
    assert all(not n.shippers for n in setup.cluster.nodes)
    assert setup.cluster.metrics()["shipped_records"] == 0
    setup.stop()


def test_router_round_robin_and_epoch():
    router = ClusterRouter(3, 4, 2)
    assert router.routes[0].replicas == [0, 1]
    assert router.routes[1].replicas == [1, 2]
    assert router.routes[2].replicas == [2, 0]
    assert router.routes[3].replicas == [0, 1]
    e0 = router.epoch
    orphans = router.mark_failed(0)
    assert sorted(orphans) == [0, 3]
    assert router.epoch > e0
    assert router.primary(0) == 1  # surviving backup now leads
    with pytest.raises(ConfigError):
        ClusterRouter(2, 4, 3)  # rf > nodes


def test_replication_requires_multiple_nodes(env):
    with pytest.raises(ConfigError):
        small_cluster(env, nodes=1, replication=2)
