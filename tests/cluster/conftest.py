"""Shared helpers for the cluster test suite."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterSetup, build_cluster
from repro.sim.kernel import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


#: Small-footprint geometry: 4 partitions x 2 pools x 3 nodes stays
#: under a few MB and every test key fits many times over.
SMALL = {
    "pool_size": 1 << 20,
    "table_buckets": 2048,
    "auto_clean": False,
}


def small_cluster(
    env: Environment,
    nodes: int = 3,
    replication: int = 2,
    n_clients: int = 1,
    cluster_overrides: dict | None = None,
    **overrides,
) -> ClusterSetup:
    cfg = dict(SMALL)
    cfg.update(overrides)
    return build_cluster(
        env,
        nodes=nodes,
        replication=replication,
        config_overrides=cfg,
        cluster_overrides=cluster_overrides,
        n_clients=n_clients,
    ).start()


def run1(env: Environment, gen):
    """Run a single generator to completion, return its value."""
    return env.run(env.process(gen))


def wait_detected(env, cluster, node_id, timeout_ns: float = 20_000_000.0):
    """Wait until the failure detector has declared ``node_id`` dead and
    any resulting promotions have settled."""
    deadline = env.now + timeout_ns
    while node_id not in cluster._dead_handled and env.now < deadline:
        yield env.timeout(50_000.0)
    assert node_id in cluster._dead_handled, "failure never detected"
    ok = yield from cluster.await_stable(timeout_ns=max(deadline - env.now, 1_000_000.0))
    assert ok, "promotions did not settle"
