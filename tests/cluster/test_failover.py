"""Failure detection, promotion, and post-failover consistency."""

from __future__ import annotations

from repro.cluster.failover import partition_digest

from tests.cluster.conftest import run1, small_cluster, wait_detected

KEYS = [b"fo-key-%02d" % i for i in range(20)]


def _workload(client, values):
    for key, value in values:
        yield from client.put(key, value)


def test_kill_primary_promotes_and_serves(env):
    """Kill node 0; the detector must declare it dead, a backup must
    promote via the recovery path, and every acked key must read back."""
    setup = small_cluster(
        env, nodes=3, replication=2,
        cluster_overrides={"verify_promotion": True},
    )
    client = setup.client(0)
    cluster = setup.cluster

    def body():
        yield from _workload(client, [(k, k * 5) for k in KEYS])
        cluster.kill_node(0)
        yield from wait_detected(env, cluster, 0)
        for k in KEYS:
            got = yield from client.get(k)
            assert got == k * 5, k

    run1(env, body())
    assert cluster.failovers == 1
    assert cluster.promotions >= 1
    assert 0 not in cluster.router.alive
    # every promoted partition has a live primary again
    for route in cluster.router.routes:
        assert route.state == "normal"
        assert route.replicas[0] != 0
    # Promotion recovery must be byte-identical-idempotent: running the
    # recovery pass twice leaves the same partition image as once.
    assert cluster.promotion_idempotent
    assert all(cluster.promotion_idempotent)
    setup.stop()


def test_kill_backup_keeps_acking_degraded(env):
    """Killing a backup must not wedge the ack gate: the detector
    shrinks the shipper's target set and puts keep succeeding."""
    setup = small_cluster(env, nodes=2, replication=2)
    client = setup.client(0)
    cluster = setup.cluster

    def body():
        yield from _workload(client, [(k, k * 3) for k in KEYS[:8]])
        # with 2 nodes every partition keeps exactly one copy per
        # node; killing node 1 orphans its primaries and removes the
        # backup of node 0's.
        cluster.kill_node(1)
        yield from wait_detected(env, cluster, 1)
        # acks continue at replication factor 1 (degraded, documented)
        yield from _workload(client, [(k, k * 7) for k in KEYS[:8]])
        for k in KEYS[:8]:
            got = yield from client.get(k)
            assert got == k * 7, k

    run1(env, body())
    assert cluster.router.alive == [0]
    assert all(r.replicas == [0] for r in cluster.router.routes)
    setup.stop()


def test_detector_declares_death_without_manual_kill(env):
    """The seeded heartbeat monitor notices a dark NIC on its own."""
    setup = small_cluster(env, nodes=3, replication=2)
    cluster = setup.cluster

    def body():
        yield from _workload(setup.client(0), [(KEYS[0], b"x" * 16)])
        # Power the node off directly - no on_node_dead call.
        cluster.nodes[2].kill()
        yield from wait_detected(env, cluster, 2)

    run1(env, body())
    assert 2 in cluster._dead_handled
    assert cluster.detector.deaths_declared >= 1
    assert 2 not in cluster.router.alive
    setup.stop()


def test_promotion_recovery_is_idempotent_digest(env):
    """Explicit digest check: a second recovery pass on the promoted
    replica leaves its pools + table segment byte-identical."""
    setup = small_cluster(
        env, nodes=2, replication=2,
        cluster_overrides={"verify_promotion": True},
    )
    client = setup.client(0)
    cluster = setup.cluster

    def body():
        yield from _workload(client, [(k, k * 4) for k in KEYS])
        cluster.kill_node(0)
        yield from wait_detected(env, cluster, 0)

    run1(env, body())
    assert cluster.promotion_idempotent and all(cluster.promotion_idempotent)
    # and the digest helper itself is deterministic on a quiet partition
    server = cluster.nodes[1].server
    part = server.partitions[0]
    assert partition_digest(server, part) == partition_digest(server, part)
    setup.stop()
