"""Seeded whole-node-kill chaos plans through the full harness.

These are the PR's acceptance gate: under every node-kill plan the
consistency oracle must confirm that no acked durable PUT is lost, and
promotion recovery must be byte-identical-idempotent.
"""

from __future__ import annotations

import pytest

from repro.faults.plans import NODE_KILL_PLANS, shipped_plan
from repro.harness.chaos import ChaosSpec, run_chaos_experiment

SMALL = {"pool_size": 1 << 21, "table_buckets": 2048}


def _spec(plan: str, seed: int, **kwargs) -> ChaosSpec:
    return ChaosSpec(
        store="efactory",
        plan=plan,
        seed=seed,
        n_clients=2,
        ops_per_client=25,
        key_count=16,
        nodes=3,
        replication=2,
        config_overrides=SMALL,
        **kwargs,
    )


@pytest.mark.parametrize("seed", [7, 13])
def test_kill_primary_plan_holds_oracle(seed):
    report = run_chaos_experiment(
        _spec(
            "node-kill",
            seed,
            cluster_overrides={"verify_promotion": True},
        )
    )
    assert report.ok, report.violations
    assert report.fault_counts.get("node_kill") == 1
    cluster = report.cluster
    assert cluster["failovers"] == 1
    assert cluster["promotions"] >= 1
    # recovery on the promoted replicas was byte-identical-idempotent
    assert cluster["promotion_idempotent"]
    assert all(cluster["promotion_idempotent"])
    # node 0 is gone and every partition found a new live primary
    assert cluster["nodes"][0]["alive"] is False
    assert 0 not in cluster["router"]["alive"]


@pytest.mark.parametrize("seed", [7, 13])
def test_kill_backup_plan_holds_oracle(seed):
    report = run_chaos_experiment(_spec("kill-backup", seed))
    assert report.ok, report.violations
    assert report.fault_counts.get("node_kill") == 1
    assert report.cluster["nodes"][1]["alive"] is False
    # degraded redundancy, not unavailability: the run kept completing
    assert report.availability > 0.9


@pytest.mark.parametrize("seed", [7, 13])
def test_kill_during_migration_plan_holds_oracle(seed):
    report = run_chaos_experiment(
        _spec(
            "kill-during-migration",
            seed,
            migration=(0, 2, 150_000.0),
            cluster_overrides={
                "drain_grace_ns": 200_000.0,
                "verify_promotion": True,
            },
        )
    )
    assert report.ok, report.violations
    assert report.fault_counts.get("node_kill") == 1
    cluster = report.cluster
    # the racing migration either completed before the kill or aborted
    # cleanly - both end states must keep the oracle green
    assert cluster["migrations"] + cluster["migrations_aborted"] == 1
    if cluster["promotion_idempotent"]:
        assert all(cluster["promotion_idempotent"])


def test_node_kill_plan_registry():
    assert NODE_KILL_PLANS == {
        "node-kill",
        "kill-backup",
        "kill-during-migration",
    }
    for name in NODE_KILL_PLANS:
        plan = shipped_plan(name)
        assert all(r.kind == "node_kill" for r in plan.rules)
        assert all(r.site.startswith("cluster.") for r in plan.rules)


def test_schedule_is_reproducible():
    """Same (plan, seed, shape) => identical fault schedule and verdict."""
    a = run_chaos_experiment(_spec("node-kill", 7))
    b = run_chaos_experiment(_spec("node-kill", 7))
    assert a.fault_schedule == b.fault_schedule
    assert a.violations == b.violations
    assert a.cluster["shipped_records"] == b.cluster["shipped_records"]
