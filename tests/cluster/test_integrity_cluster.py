"""The integrity tier in cluster mode: backup-node scrubbing of shipped
replicas and replica-assisted repair (``repair_fetch``) when local
parity cannot reconstruct a multi-fault stripe."""

from __future__ import annotations

from repro.harness.chaos import ChaosSpec, run_chaos_experiment
from repro.kv.hashtable import key_fingerprint, partition_of_fp
from repro.kv.objects import HEADER_SIZE

from tests.cluster.conftest import run1, small_cluster

#: Scrubber + parity + integrity tree, tight interval for test pacing.
PARITY = {
    "scrub_interval_ns": 2_000.0,
    "parity_stripe_kb": 4,
    "integrity_tree": True,
}

#: 16-byte keys + 160-byte values -> 216-byte objects -> 256-byte log
#: slots, so consecutive heads sit exactly one parity page apart and
#: same-offset faults share a parity column (the multi-fault case).
KLEN = 16
VLEN = 160


def _key(i: int) -> bytes:
    k = b"cl-%013d" % i
    assert len(k) == KLEN
    return k


def _keys_in_one_partition(setup, n: int) -> tuple[int, list[bytes]]:
    """First ``n`` generated keys that all hash to the same partition."""
    nparts = setup.cluster.store_config.num_partitions
    target = partition_of_fp(key_fingerprint(_key(0)), nparts)
    keys, i = [], 0
    while len(keys) < n:
        k = _key(i)
        if partition_of_fp(key_fingerprint(k), nparts) == target:
            keys.append(k)
        i += 1
    return target, keys


def _primary_backup(setup, part_id: int) -> tuple[int, int]:
    router = setup.cluster.router
    return router.primary(part_id), router.backups(part_id)[0]


def _head(setup, node_id: int, part_id: int, key: bytes):
    part = setup.cluster.nodes[node_id].server.partitions[part_id]
    entry_off = part.table.find(key_fingerprint(key))
    assert entry_off is not None
    cur = part.table.read_cur(entry_off)
    assert cur is not None
    return cur


def _corrupt_value(setup, node_id: int, part_id: int, cur, byte: int = 0):
    """Flip a bit in a value byte of the record at ``cur`` on ``node_id``."""
    node = setup.cluster.nodes[node_id]
    pool = node.server.partitions[part_id].pools[cur.pool]
    addr = pool.abs_addr(cur.offset) + HEADER_SIZE + KLEN + byte
    node.server.device.corrupt(addr, "bitflip")


def _record_bytes(setup, node_id: int, part_id: int, cur) -> bytes:
    pool = setup.cluster.nodes[node_id].server.partitions[part_id].pools[cur.pool]
    return bytes(pool.read(cur.offset, cur.size))


def _wait_for_scrub(env, setup, node_id: int, field: str, deadline_ns=200_000_000):
    scrubber = setup.cluster.nodes[node_id].server.scrubber
    deadline = env.now + deadline_ns
    while env.now < deadline and scrubber.stats()[field] == 0:
        env.run(until=env.now + 1_000_000)
    return scrubber.stats()


class TestBackupScrubbing:
    def test_backup_rot_reconstructed_from_local_parity(self, env):
        """Backups have no table to walk, but the scrubber walks the
        shipped extents: rot on a replica copy is found and rebuilt in
        place from the backup's own parity."""
        setup = small_cluster(env, nodes=3, replication=2, **PARITY)
        client = setup.client(0)
        part_id, keys = _keys_in_one_partition(setup, 6)

        def body():
            for i, k in enumerate(keys):
                yield from client.put(k, bytes([i + 1]) * VLEN)

        run1(env, body())  # acked => verified, shipped, covered on backups
        pid, bid = _primary_backup(setup, part_id)
        cur = _head(setup, pid, part_id, keys[0])
        pristine = _record_bytes(setup, pid, part_id, cur)
        assert _record_bytes(setup, bid, part_id, cur) == pristine

        _corrupt_value(setup, bid, part_id, cur)
        stats = _wait_for_scrub(env, setup, bid, "reconstructed")
        assert stats["scrubbed"] > 0  # the backup scrubber really walks
        assert stats["corrupt_found"] >= 1
        assert stats["reconstructed"] >= 1
        assert stats["unrepairable"] == 0
        # the replica is byte-identical to the primary again
        assert _record_bytes(setup, bid, part_id, cur) == pristine
        setup.stop()

    def test_backup_multi_fault_refetched_from_primary(self, env):
        """Two same-column faults defeat the backup's local parity; the
        scrubber re-fetches the bytes from the partition's primary."""
        setup = small_cluster(env, nodes=3, replication=2, **PARITY)
        client = setup.client(0)
        part_id, keys = _keys_in_one_partition(setup, 2)
        k0, k1 = keys
        v0, v1 = b"\x11" * VLEN, b"\x22" * VLEN

        def body():
            yield from client.put(k0, v0)
            yield from client.put(k1, v1)

        run1(env, body())
        pid, bid = _primary_backup(setup, part_id)
        h0 = _head(setup, pid, part_id, k0)
        h1 = _head(setup, pid, part_id, k1)
        assert (h1.offset - h0.offset) % 256 == 0  # same parity column
        pristine = [_record_bytes(setup, pid, part_id, h) for h in (h0, h1)]

        _corrupt_value(setup, bid, part_id, h0, byte=10)
        _corrupt_value(setup, bid, part_id, h1, byte=10)
        stats = _wait_for_scrub(env, setup, bid, "replica_fetched")
        assert stats["parity_stale"] >= 1  # local reconstruction failed
        assert stats["replica_fetched"] >= 1
        # settle until the second record's repair lands too
        deadline = env.now + 50_000_000
        while env.now < deadline and (
            _record_bytes(setup, bid, part_id, h0) != pristine[0]
            or _record_bytes(setup, bid, part_id, h1) != pristine[1]
        ):
            env.run(until=env.now + 1_000_000)
        assert _record_bytes(setup, bid, part_id, h0) == pristine[0]
        assert _record_bytes(setup, bid, part_id, h1) == pristine[1]
        assert stats["unrepairable"] == 0
        setup.stop()


class TestPrimaryReplicaAssistedRepair:
    def test_multi_fault_stripe_repaired_via_repair_fetch(self, env):
        """On a primary, a multi-fault stripe that defeats parity is
        repaired from a backup's shipped copy — keeping the *newest*
        acked version, where single-node rollback would lose it."""
        setup = small_cluster(env, nodes=3, replication=2, **PARITY)
        client = setup.client(0)
        part_id, keys = _keys_in_one_partition(setup, 2)
        k0, k1 = keys
        v0a, v0b, v1 = b"\x31" * VLEN, b"\x32" * VLEN, b"\x33" * VLEN

        def body():
            yield from client.put(k0, v0a)
            yield from client.put(k0, v0b)
            yield from client.put(k1, v1)

        run1(env, body())
        pid, _bid = _primary_backup(setup, part_id)
        h0 = _head(setup, pid, part_id, k0)  # v0b's record
        h1 = _head(setup, pid, part_id, k1)
        assert (h1.offset - h0.offset) % 256 == 0  # same parity column

        _corrupt_value(setup, pid, part_id, h0, byte=10)
        _corrupt_value(setup, pid, part_id, h1, byte=10)
        stats = _wait_for_scrub(env, setup, pid, "replica_fetched")
        assert stats["parity_stale"] >= 1
        assert stats["replica_fetched"] >= 1
        assert stats["unrepairable"] == 0

        def check():
            got0 = yield from client.get(k0)
            got1 = yield from client.get(k1)
            return got0, got1

        got0, got1 = run1(env, check())
        assert got0 == v0b  # the newest version survived, not a rollback
        assert got1 == v1
        # replica repair beat rollback: no version was discarded
        assert setup.cluster.nodes[pid].server.scrubber.stats()["repaired"] == 0
        setup.stop()


class TestClusterChaos:
    def test_bitrot_plan_with_parity_engages_backup_scrubbers(self):
        """Satellite gate: a seeded cluster bitrot run with the parity
        tier holds the oracle, and every node — backups included —
        reports scrub activity and repair outcomes."""
        report = run_chaos_experiment(
            ChaosSpec(
                store="efactory",
                plan="bitrot",
                parity=True,
                nodes=3,
                replication=2,
                n_clients=2,
                ops_per_client=30,
                key_count=12,
                seed=7,
                config_overrides={"pool_size": 1 << 20, "table_buckets": 2048},
            )
        )
        assert report.ok, report.violations
        assert report.repair  # media plan -> repair outcome summary
        assert report.repair["media_faults"] > 0
        assert report.repair["detected"] >= report.repair["cleared"]
        # parity + integrity tree were armed on every node
        assert report.integrity["covered"] > 0
        # every node's scrubbers ran; backups walk the shipped extents
        for n in report.cluster["nodes"]:
            assert n["scrub"]["scrubbed"] > 0, n["node"]
