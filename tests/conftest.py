"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Environment
from repro.stores import StoreSetup, build_store


@pytest.fixture
def env() -> Environment:
    return Environment()


#: Small-footprint config for fast store tests.
SMALL = {"pool_size": 1 << 20, "table_buckets": 512}


def small_store(
    name: str, env: Environment, n_clients: int = 1, **overrides
) -> StoreSetup:
    """Deploy a store with a small memory footprint for unit tests."""
    cfg = dict(SMALL)
    if name.startswith("efactory"):
        cfg["auto_clean"] = False
    cfg.update(overrides)
    return build_store(name, env, config_overrides=cfg, n_clients=n_clients).start()


def run1(env: Environment, gen):
    """Run a single client generator to completion, return its value."""
    return env.run(env.process(gen))


ALL_STORES = [
    "efactory",
    "efactory_nohr",
    "ca",
    "rpc",
    "saw",
    "imm",
    "erda",
    "forca",
]
